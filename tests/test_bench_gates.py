"""CI gate plumbing: the perf-regression check and snapshot merging.

The ``perf-smoke`` job's promise is behavioral: it must *fail* on a
perf regression beyond tolerance and *pass* on unchanged numbers, and
``BENCH_core.json`` must come out the same whichever benchmark script
writes it first.  These tests drive the actual scripts
(``benchmarks/check_regression.py``, ``perf_harness.emit``,
``bench_scenarios.merge_into_snapshot``) against synthetic snapshots.
"""

import json
import pathlib
import sys

import pytest

BENCH_DIR = str(pathlib.Path(__file__).resolve().parent.parent / "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import bench_scenarios  # noqa: E402
import check_regression  # noqa: E402
import perf_harness  # noqa: E402


def snapshot(lookup=5.0, rng=75.0, build=0.11, extra=None):
    payload = {
        "schema": "bench-core/v1",
        "results": {
            "lookup_us": {"256": lookup, "1024": lookup * 1.4},
            "range_us": {"256": rng, "1024": rng * 3.6},
            "build_s": {"256": build, "1024": build * 6},
        },
    }
    if extra:
        payload.update(extra)
    return payload


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return path


class TestCheckRegression:
    def test_identical_snapshots_pass(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot())
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "FAIL" not in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot(lookup=5.0 * 2.0))
        code = check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out
        assert "lookup_us" in out.err

    def test_noise_inside_tolerance_passes(self, tmp_path):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot(lookup=5.0 * 1.4, rng=75.0 * 1.45))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_tolerance_is_configurable(self, tmp_path):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot(lookup=5.0 * 1.4))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand), "--tolerance", "1.2"]
        ) == 1

    def test_improvements_never_fail(self, tmp_path):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot(lookup=1.0, rng=10.0, build=0.01))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_quick_candidate_compares_overlapping_sizes_only(self, tmp_path):
        # The committed full snapshot has N=4096; the quick run does not.
        full = snapshot(extra=None)
        full["results"]["lookup_us"]["4096"] = 9.5
        base = write(tmp_path, "base.json", full)
        cand = write(tmp_path, "cand.json", snapshot())
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_no_overlap_is_a_gate_error(self, tmp_path):
        base = write(tmp_path, "base.json", {"results": {"lookup_us": {"512": 5.0}}})
        cand = write(tmp_path, "cand.json", snapshot())
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 2

    def test_unreadable_snapshot_is_a_gate_error(self, tmp_path):
        base = tmp_path / "missing.json"
        cand = write(tmp_path, "cand.json", snapshot())
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 2

    @pytest.mark.parametrize("metric", check_regression.METRICS)
    def test_every_gated_metric_can_trip(self, tmp_path, metric):
        base = write(tmp_path, "base.json", snapshot())
        bad = snapshot()
        bad["results"][metric]["1024"] *= 10
        cand = write(tmp_path, "cand.json", bad)
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1


def scenario_section(mass_leave=0.97, churn=0.94, *, n_peers=4096, scale=1.0):
    return {
        "backend": "message",
        "n_peers": n_peers,
        "duration_scale": scale,
        "seed": 20050830,
        "results": {
            "mass-leave": {"success_rate": mass_leave, "queries": 3600},
            "paper-sec51-churn": {"success_rate": churn, "queries": 4400},
        },
    }


class TestScenarioSuccessGate:
    """The message-backend success-rate gate: repair regressions (e.g.
    mass-leave sliding back toward the unrepaired ~0.64) must fail the
    job even when raw perf is fine."""

    def test_matching_rates_pass(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "scenario gate [scenarios_message]" in capsys.readouterr().out

    def test_success_drop_beyond_tolerance_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section(mass_leave=0.64)}))
        code = check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        )
        assert code == 1
        out = capsys.readouterr()
        assert "mass-leave" in out.err

    def test_drop_inside_tolerance_passes(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section(mass_leave=0.93)}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_scenario_tolerance_is_configurable(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section(mass_leave=0.93)}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand),
             "--scenario-tolerance", "0.01"]
        ) == 1

    def test_improvements_never_fail(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section(mass_leave=0.64)}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section(mass_leave=0.97)}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0

    def test_incomparable_populations_skip_the_scenario_gate(self, tmp_path, capsys):
        # The quick CI candidate (N=256) is incomparable to the
        # committed N=4096 section: skipped, never a false failure.
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json", snapshot(extra={
            "scenarios_message": scenario_section(mass_leave=0.50, n_peers=256, scale=0.25)
        }))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "skipped" in capsys.readouterr().out

    def test_scenario_missing_from_candidate_fails(self, tmp_path, capsys):
        # A partial candidate must not pass by omitting the regressed
        # scenario: a baseline-gated scenario absent from the candidate
        # section is itself a failure.
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        partial = scenario_section()
        del partial["results"]["mass-leave"]
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": partial}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "missing from candidate" in capsys.readouterr().err

    def test_scenario_new_in_candidate_is_not_gated(self, tmp_path):
        base = scenario_section()
        del base["results"]["mass-leave"]  # baseline predates the scenario
        basep = write(tmp_path, "base.json",
                      snapshot(extra={"scenarios_message": base}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        assert check_regression.main(
            ["--baseline", str(basep), "--candidate", str(cand)]
        ) == 0

    def test_missing_section_skips_the_scenario_gate(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "skipped" in capsys.readouterr().out


def write_section(
    write_sr=0.98, divergence=0.01, bytes_update=500_000, *, section_backend="message"
):
    section = scenario_section()
    section["backend"] = section_backend
    section["results"]["read-write-balanced"] = {
        "success_rate": 0.99,
        "write_success_rate": write_sr,
        "divergence_final": divergence,
        "bytes_update": bytes_update,
        "queries": 2400,
        "writes": 1200,
    }
    return section


class TestWriteMetricGates:
    """The write-path gate: write success, replica divergence and update
    bandwidth are first-class gated metrics, not silently ignored keys."""

    def pair(self, tmp_path, base_section, cand_section):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": base_section}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": cand_section}))
        return ["--baseline", str(base), "--candidate", str(cand)]

    def test_matching_write_metrics_pass(self, tmp_path):
        argv = self.pair(tmp_path, write_section(), write_section())
        assert check_regression.main(argv) == 0

    def test_write_success_drop_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, write_section(), write_section(write_sr=0.80))
        assert check_regression.main(argv) == 1
        assert "write_success_rate" in capsys.readouterr().err

    def test_divergence_rise_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, write_section(), write_section(divergence=0.30))
        assert check_regression.main(argv) == 1
        assert "divergence_final" in capsys.readouterr().err

    def test_divergence_drop_never_fails(self, tmp_path):
        argv = self.pair(tmp_path, write_section(divergence=0.30), write_section())
        assert check_regression.main(argv) == 0

    def test_update_bytes_blowup_fails(self, tmp_path, capsys):
        argv = self.pair(
            tmp_path, write_section(), write_section(bytes_update=1_000_000)
        )
        assert check_regression.main(argv) == 1
        assert "bytes_update" in capsys.readouterr().err

    def test_update_bytes_within_ratio_pass(self, tmp_path):
        argv = self.pair(
            tmp_path, write_section(), write_section(bytes_update=700_000)
        )
        assert check_regression.main(argv) == 0

    def test_dataplane_section_is_gated_too(self, tmp_path, capsys):
        base = write(tmp_path, "base.json", snapshot(
            extra={"scenarios": write_section(section_backend="dataplane")}
        ))
        cand = write(tmp_path, "cand.json", snapshot(
            extra={"scenarios": write_section(0.5, section_backend="dataplane")}
        ))
        code = check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        )
        assert code == 1
        assert "scenarios/read-write-balanced" in capsys.readouterr().err


class TestStepSummary:
    """The CI-readability satellite: gate results as a markdown table."""

    def run_with_summary(self, tmp_path, cand_payload):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": write_section()}))
        cand = write(tmp_path, "cand.json", cand_payload)
        summary = tmp_path / "summary.md"
        code = check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ])
        return code, summary.read_text()

    def test_passing_gate_writes_markdown_tables(self, tmp_path):
        code, text = self.run_with_summary(
            tmp_path, snapshot(extra={"scenarios_message": write_section()})
        )
        assert code == 0
        assert "## Regression gates — ✅ pass" in text
        assert "| metric | N | baseline | candidate | ratio | verdict |" in text
        assert "| lookup_us | 256 |" in text
        assert "`scenarios_message`" in text
        assert "| read-write-balanced | write_success_rate |" in text

    def test_failing_gate_marks_rows_and_lists_failures(self, tmp_path):
        code, text = self.run_with_summary(
            tmp_path,
            snapshot(lookup=5.0 * 2.0,
                     extra={"scenarios_message": write_section(write_sr=0.5)}),
        )
        assert code == 1
        assert "## Regression gates — ❌ FAIL" in text
        assert "❌ fail" in text
        assert "**Regressions beyond tolerance:**" in text
        assert "write_success_rate" in text

    def test_skipped_sections_are_noted(self, tmp_path):
        code, text = self.run_with_summary(tmp_path, snapshot())
        # Candidate has no scenario sections at all: both gates skip.
        assert code == 0
        assert text.count("_skipped:") == 2

    def test_summary_env_var_is_honored(self, tmp_path, monkeypatch):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot())
        summary = tmp_path / "ghsummary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "## Regression gates" in summary.read_text()

    def test_summary_appends_not_overwrites(self, tmp_path):
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json", snapshot())
        summary = tmp_path / "summary.md"
        summary.write_text("previous step output\n")
        check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ])
        text = summary.read_text()
        assert text.startswith("previous step output\n")
        assert "## Regression gates" in text


class TestSnapshotMergeOrder:
    """The BENCH_core.json ordering footgun: either script may run first."""

    SCEN = {"backend": "dataplane", "results": {"uniform-baseline": {"queries": 1}}}
    MSG = {"backend": "message", "results": {"uniform-baseline": {"queries": 1}}}

    def both_orders(self, tmp_path):
        a = tmp_path / "a.json"
        perf_harness.emit(snapshot(), a)
        bench_scenarios.merge_into_snapshot(dict(self.SCEN), a, "scenarios")
        bench_scenarios.merge_into_snapshot(dict(self.MSG), a, "scenarios_message")

        b = tmp_path / "b.json"
        bench_scenarios.merge_into_snapshot(dict(self.SCEN), b, "scenarios")
        bench_scenarios.merge_into_snapshot(dict(self.MSG), b, "scenarios_message")
        perf_harness.emit(snapshot(), b)
        return json.loads(a.read_text()), json.loads(b.read_text())

    def test_sections_survive_either_order(self, tmp_path):
        first, second = self.both_orders(tmp_path)
        for payload in (first, second):
            assert payload["scenarios"]["backend"] == "dataplane"
            assert payload["scenarios_message"]["backend"] == "message"
            assert payload["results"]["lookup_us"]["256"] == 5.0

    def test_content_identical_across_orders(self, tmp_path):
        first, second = self.both_orders(tmp_path)
        assert first == second

    def test_perf_suite_refresh_replaces_its_own_sections(self, tmp_path):
        path = tmp_path / "c.json"
        perf_harness.emit(snapshot(lookup=9.9), path)
        bench_scenarios.merge_into_snapshot(dict(self.SCEN), path, "scenarios")
        perf_harness.emit(snapshot(lookup=4.4), path)  # fresh numbers win
        payload = json.loads(path.read_text())
        assert payload["results"]["lookup_us"]["256"] == 4.4
        assert "scenarios" in payload  # foreign section preserved


def recovery_section(
    warm_time=2.0,
    warm_bytes=100_000,
    cold_time=50.0,
    cold_bytes=400_000,
    lost=0,
    resurrected=0,
    *,
    crashes=0,
    durability=True,
):
    """A scenario section carrying one restart entry with inline cold pass."""
    section = scenario_section()
    section["results"]["restart-storm"] = {
        "success_rate": 0.99,
        "queries": 3600,
        "recovery_time_s": warm_time,
        "recovery_maint_bytes": warm_bytes,
        "lost_acked_writes": lost,
        "tombstone_resurrections": resurrected,
        "recovery": {
            "durability_enabled": durability,
            "restarts": 24,
            "clean_shutdowns": 24 - crashes,
            "crashes": crashes,
            "cold": {
                "time_to_converged_divergence_s": cold_time,
                "recovery_maint_bytes": cold_bytes,
                "lost_acked_writes": 3,
                "tombstone_resurrections": 2,
            },
        },
    }
    return section


class TestRecoveryGate:
    """The persistence gate: warm rejoin must beat the inline cold pass,
    and clean-shutdown durable runs must lose nothing -- intra-snapshot
    checks that run even without a comparable baseline."""

    def pair(self, tmp_path, cand_section):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": cand_section}))
        return ["--baseline", str(base), "--candidate", str(cand)]

    def test_healthy_recovery_passes(self, tmp_path, capsys):
        argv = self.pair(tmp_path, recovery_section())
        assert check_regression.main(argv) == 0
        assert "recovery gate" in capsys.readouterr().out

    def test_warm_time_exceeding_cold_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, recovery_section(warm_time=60.0))
        assert check_regression.main(argv) == 1
        assert "time-to-converged-divergence" in capsys.readouterr().err

    def test_warm_bytes_must_be_strictly_below_cold(self, tmp_path, capsys):
        argv = self.pair(tmp_path, recovery_section(warm_bytes=400_000))
        assert check_regression.main(argv) == 1
        assert "maintenance bytes" in capsys.readouterr().err

    def test_clean_shutdown_loss_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, recovery_section(lost=1))
        assert check_regression.main(argv) == 1
        assert "lost_acked_writes" in capsys.readouterr().err

    def test_clean_shutdown_resurrection_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, recovery_section(resurrected=2))
        assert check_regression.main(argv) == 1
        assert "tombstone_resurrections" in capsys.readouterr().err

    def test_crash_runs_are_not_zero_gated(self, tmp_path):
        argv = self.pair(
            tmp_path, recovery_section(lost=4, resurrected=1, crashes=8)
        )
        assert check_regression.main(argv) == 0

    def test_durability_off_runs_are_not_zero_gated(self, tmp_path):
        argv = self.pair(
            tmp_path, recovery_section(lost=4, resurrected=1, durability=False)
        )
        assert check_regression.main(argv) == 0

    def test_recovery_rows_reach_the_step_summary(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": recovery_section()}))
        summary = tmp_path / "summary.md"
        assert check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ]) == 0
        text = summary.read_text()
        assert "### Recovery" in text
        assert "warm_bytes<cold_bytes" in text


def serving_section(
    p99_on=0.4,
    p99_off=30.5,
    gini_on=0.22,
    gini_off=0.34,
    succ_on=0.99,
    succ_off=0.99,
    *,
    enabled=True,
    hit_rate=0.5,
    stale_rate=0.1,
):
    """A scenario section carrying one serving entry with inline off pass."""
    section = scenario_section()
    section["results"]["zipf-serving"] = {
        "success_rate": succ_on,
        "queries": 7200,
        "cache_hit_rate": hit_rate,
        "stale_read_rate": stale_rate,
        "serving_p99_s": p99_on,
        "load_gini": gini_on,
        "serving": {
            "enabled": enabled,
            "off": {
                "success_rate": succ_off,
                "serving_p99_s": p99_off,
                "load_gini": gini_off,
            },
        },
    }
    return section


class TestServingGate:
    """The serving gate: caches on must beat the inline cache-off pass
    on tail latency and load spread without losing query success --
    intra-snapshot checks that run even without a comparable baseline."""

    def pair(self, tmp_path, cand_section):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": cand_section}))
        return ["--baseline", str(base), "--candidate", str(cand)]

    def test_healthy_serving_passes(self, tmp_path, capsys):
        argv = self.pair(tmp_path, serving_section())
        assert check_regression.main(argv) == 0
        assert "serving gate" in capsys.readouterr().out

    def test_p99_not_below_off_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, serving_section(p99_on=30.5, p99_off=30.5))
        assert check_regression.main(argv) == 1
        assert "serving p99" in capsys.readouterr().err

    def test_gini_not_below_off_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, serving_section(gini_on=0.34, gini_off=0.34))
        assert check_regression.main(argv) == 1
        assert "load Gini" in capsys.readouterr().err

    def test_success_drop_beyond_tolerance_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, serving_section(succ_on=0.80, succ_off=0.99))
        assert check_regression.main(argv) == 1
        assert "query success" in capsys.readouterr().err

    def test_success_drop_inside_tolerance_passes(self, tmp_path):
        argv = self.pair(tmp_path, serving_section(succ_on=0.97, succ_off=0.99))
        assert check_regression.main(argv) == 0

    def test_disabled_entries_are_not_gated(self, tmp_path):
        # An enabled=False headline entry carries baseline-only numbers;
        # there is no cache win to enforce.
        argv = self.pair(
            tmp_path,
            serving_section(p99_on=30.5, p99_off=30.5, enabled=False),
        )
        assert check_regression.main(argv) == 0

    def test_dataplane_entries_without_latency_gate_gini_only(self, tmp_path, capsys):
        section = serving_section(gini_on=0.50, gini_off=0.34)
        entry = section["results"]["zipf-serving"]
        entry["serving_p99_s"] = None
        entry["serving"]["off"]["serving_p99_s"] = None
        section["backend"] = "dataplane"
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios": section}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        err = capsys.readouterr().err
        assert "load Gini" in err and "p99" not in err

    def test_hit_rate_drop_vs_baseline_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": serving_section()}))
        cand = write(
            tmp_path, "cand.json",
            snapshot(extra={"scenarios_message": serving_section(hit_rate=0.3)}),
        )
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "cache_hit_rate" in capsys.readouterr().err

    def test_stale_rate_rise_vs_baseline_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": serving_section()}))
        cand = write(
            tmp_path, "cand.json",
            snapshot(extra={"scenarios_message": serving_section(stale_rate=0.3)}),
        )
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "stale_read_rate" in capsys.readouterr().err

    def test_p99_ratio_blowup_vs_baseline_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": serving_section()}))
        cand = write(
            tmp_path, "cand.json",
            snapshot(extra={"scenarios_message": serving_section(
                p99_on=0.9, p99_off=30.5)}),
        )
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "serving_p99_s" in capsys.readouterr().err

    def test_serving_rows_reach_the_step_summary(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": serving_section()}))
        summary = tmp_path / "summary.md"
        assert check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ]) == 0
        text = summary.read_text()
        assert "### Serving" in text
        assert "gini_on<gini_off" in text


def mdim_section(
    recall=1.0,
    rpb=10.8,
    *,
    rpb_max=15,
    budget=16,
    boxes=46,
):
    """A scenario section carrying one multi-dimensional box entry."""
    section = scenario_section()
    section["results"]["geo-box-serving"] = {
        "success_rate": 0.99,
        "queries": 4200,
        "box_recall": recall,
        "ranges_per_box": rpb,
        "mdim": {
            "dims": 2,
            "bits_per_dim": 26,
            "split_budget": budget,
            "boxes": boxes,
            "box_success_rate": 1.0,
            "ranges_total": boxes * 10,
            "ranges_per_box_max": rpb_max,
        },
    }
    return section


class TestMdimGate:
    """The multi-dimensional gate: box recall must hold its floor and
    the z-order decomposition must respect its split budget --
    intra-snapshot checks that run even without a comparable baseline."""

    def pair(self, tmp_path, cand_section):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": cand_section}))
        return ["--baseline", str(base), "--candidate", str(cand)]

    def test_healthy_mdim_passes(self, tmp_path, capsys):
        argv = self.pair(tmp_path, mdim_section())
        assert check_regression.main(argv) == 0
        assert "mdim gate" in capsys.readouterr().out

    def test_recall_below_floor_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, mdim_section(recall=0.90))
        assert check_regression.main(argv) == 1
        assert "box recall" in capsys.readouterr().err

    def test_recall_inside_tolerance_passes(self, tmp_path):
        argv = self.pair(tmp_path, mdim_section(recall=0.96))
        assert check_regression.main(argv) == 0

    def test_mean_rpb_above_budget_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, mdim_section(rpb=17.2))
        assert check_regression.main(argv) == 1
        assert "split budget" in capsys.readouterr().err

    def test_max_rpb_above_budget_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, mdim_section(rpb_max=17))
        assert check_regression.main(argv) == 1
        assert "ranges_per_box_max" in capsys.readouterr().err

    def test_boxless_entries_are_not_gated(self, tmp_path):
        # A run whose phases issued no boxes pins nothing: recall and
        # ranges-per-box are vacuous without boxes behind them.
        argv = self.pair(tmp_path, mdim_section(recall=0.0, boxes=0))
        assert check_regression.main(argv) == 0

    def test_recall_drop_vs_baseline_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": mdim_section()}))
        cand = write(
            tmp_path, "cand.json",
            snapshot(extra={"scenarios_message": mdim_section(recall=0.80)}),
        )
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        # The cross-snapshot drop gate trips by metric name (the intra
        # floor fires too -- a real recall loss should fail loudly).
        assert "box_recall:" in capsys.readouterr().err

    def test_rpb_ratio_blowup_vs_baseline_fails(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": mdim_section(rpb=2.0)}))
        cand = write(
            tmp_path, "cand.json",
            snapshot(extra={"scenarios_message": mdim_section(rpb=8.0)}),
        )
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "ranges_per_box" in capsys.readouterr().err

    def test_mdim_rows_reach_the_step_summary(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scenarios_message": scenario_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scenarios_message": mdim_section()}))
        summary = tmp_path / "summary.md"
        assert check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ]) == 0
        text = summary.read_text()
        assert "### Mdim" in text
        assert "ranges_per_box<=budget" in text

    def test_recall_exactly_at_floor_passes(self, tmp_path):
        argv = self.pair(tmp_path, mdim_section(recall=0.95))
        assert check_regression.main(argv) == 0


def scale_section(
    wall=6.5,
    eps=6400.0,
    *,
    match=True,
    pending_peak=935,
    pending_bound=66560,
    pending_ok=True,
    scenario="uniform-baseline",
    seed=20050830,
    scale=0.05,
    cells=None,
):
    if cells is None:
        cells = [
            {
                "n_peers": 16384, "shards": 1, "mode": "single",
                "wall_s": wall, "events": 15456, "events_per_s": eps,
                "pending_peak": pending_peak, "pending_bound": pending_bound,
                "pending_bound_ok": pending_ok,
            },
            {
                "n_peers": 16384, "shards": 8, "mode": "workers",
                "wall_s": wall, "events": 14060, "events_per_s": eps,
                "pending_peak": 122, "pending_bound": 9216,
                "pending_bound_ok": True,
            },
        ]
    return {
        "schema": "scale/v1",
        "scenario": scenario,
        "seed": seed,
        "duration_scale": scale,
        "determinism": {
            "n_peers": 1024,
            "shards": 8,
            "digest_shards1": "a" * 64,
            "digest_shards8": ("a" if match else "b") * 64,
            "match": match,
        },
        "cells": cells,
    }


class TestScaleGate:
    """The sharded-kernel scale gates: cell ratios vs the committed
    matrix, plus the intra-snapshot digest-equality and bounded-heap
    invariants that hold on the candidate alone."""

    def pair(self, tmp_path, base_section, cand_section):
        base = write(tmp_path, "base.json", snapshot(extra={"scale": base_section}))
        cand = write(tmp_path, "cand.json", snapshot(extra={"scale": cand_section}))
        return ["--baseline", str(base), "--candidate", str(cand)]

    def test_identical_scale_sections_pass(self, tmp_path, capsys):
        argv = self.pair(tmp_path, scale_section(), scale_section())
        assert check_regression.main(argv) == 0
        out = capsys.readouterr().out
        assert "scale gate" in out and "FAIL" not in out

    def test_wall_clock_blowup_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, scale_section(), scale_section(wall=6.5 * 2))
        assert check_regression.main(argv) == 1
        assert "wall_s" in capsys.readouterr().err

    def test_throughput_drop_fails(self, tmp_path, capsys):
        argv = self.pair(tmp_path, scale_section(), scale_section(eps=6400.0 / 2))
        assert check_regression.main(argv) == 1
        assert "events_per_s" in capsys.readouterr().err

    def test_noise_inside_tolerance_passes(self, tmp_path):
        argv = self.pair(
            tmp_path, scale_section(), scale_section(wall=6.5 * 1.3, eps=6400.0 / 1.3)
        )
        assert check_regression.main(argv) == 0

    def test_speedup_never_fails(self, tmp_path):
        argv = self.pair(
            tmp_path, scale_section(), scale_section(wall=6.5 / 4, eps=6400.0 * 4)
        )
        assert check_regression.main(argv) == 0

    def test_digest_mismatch_fails_without_baseline_overlap(self, tmp_path, capsys):
        # The determinism audit is intra-snapshot: it must trip even when
        # the baseline has no scale section at all.
        base = write(tmp_path, "base.json", snapshot())
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scale": scale_section(match=False)}))
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 1
        assert "digest" in capsys.readouterr().err

    def test_pending_bound_breach_fails(self, tmp_path, capsys):
        argv = self.pair(
            tmp_path, scale_section(),
            scale_section(pending_peak=99999, pending_ok=False),
        )
        assert check_regression.main(argv) == 1
        assert "pending peak" in capsys.readouterr().err

    def test_incomparable_sections_skip_cell_ratios(self, tmp_path, capsys):
        # A different duration scale makes the cells incomparable; the
        # ratio gate skips with a note, the intra gates stay live.
        argv = self.pair(
            tmp_path, scale_section(), scale_section(scale=0.5, wall=65.0)
        )
        assert check_regression.main(argv) == 0
        assert "skipped" in capsys.readouterr().out

    def test_disjoint_cells_pin_nothing(self, tmp_path):
        # The CI smoke cell (N=8192) has no committed counterpart.
        smoke_cells = [{
            "n_peers": 8192, "shards": 4, "mode": "workers",
            "wall_s": 2.0, "events": 7084, "events_per_s": 3600.0,
            "pending_peak": 136, "pending_bound": 9216,
            "pending_bound_ok": True,
        }]
        argv = self.pair(
            tmp_path, scale_section(), scale_section(cells=smoke_cells)
        )
        assert check_regression.main(argv) == 0

    def test_missing_candidate_section_skips(self, tmp_path, capsys):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scale": scale_section()}))
        cand = write(tmp_path, "cand.json", snapshot())
        assert check_regression.main(
            ["--baseline", str(base), "--candidate", str(cand)]
        ) == 0
        assert "no scale section" in capsys.readouterr().out

    def test_ratchet_trips_below_pre_fast_path_floor(self, tmp_path, capsys):
        # Both snapshots agree at eps=3000, so the baseline ratio gate is
        # silent -- but 3000 ev/s is under 1.5x the pinned pre-fast-path
        # floors for the N=16384 cells, and the ratchet must catch it.
        argv = self.pair(tmp_path, scale_section(eps=3000.0),
                         scale_section(eps=3000.0))
        assert check_regression.main(argv) == 1
        assert "pre-fast-path floor" in capsys.readouterr().err

    def test_ratchet_skips_non_canonical_knobs(self, tmp_path):
        # A scale section run at a different seed is incomparable to the
        # pinned floors: the ratchet (and the cell ratio gate) skip.
        argv = self.pair(tmp_path, scale_section(seed=1, eps=100.0),
                         scale_section(seed=1, eps=100.0))
        assert check_regression.main(argv) == 0

    def test_ratchet_ignores_unpinned_cells(self, tmp_path):
        # The CI smoke cell (N=8192) has no pre-fast-path counterpart;
        # even a slow one pins nothing.
        smoke_cells = [{
            "n_peers": 8192, "shards": 4, "mode": "workers",
            "wall_s": 2.0, "events": 7084, "events_per_s": 100.0,
            "pending_peak": 136, "pending_bound": 9216,
            "pending_bound_ok": True,
        }]
        argv = self.pair(tmp_path, scale_section(cells=smoke_cells),
                         scale_section(cells=smoke_cells))
        assert check_regression.main(argv) == 0

    def test_ratchet_rows_reach_the_step_summary(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scale": scale_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scale": scale_section()}))
        summary = tmp_path / "summary.md"
        assert check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ]) == 0
        assert "pre-fast-path" in summary.read_text()

    def test_scale_rows_reach_the_step_summary(self, tmp_path):
        base = write(tmp_path, "base.json",
                     snapshot(extra={"scale": scale_section()}))
        cand = write(tmp_path, "cand.json",
                     snapshot(extra={"scale": scale_section()}))
        summary = tmp_path / "summary.md"
        assert check_regression.main([
            "--baseline", str(base), "--candidate", str(cand),
            "--summary", str(summary),
        ]) == 0
        text = summary.read_text()
        assert "### Scale" in text
        assert "digest_shards8==shards1" in text
        assert "pending_peak<=bound" in text

"""Tests for the AUT fluid model."""

import math
import statistics

import pytest

from repro.core.aut import AUT_HALF_COST, aut_cost_per_peer, aut_interactions
from repro.core.bisection import simulate_aut
from repro.exceptions import DomainError


class TestFluidModel:
    def test_half_cost_closed_form(self):
        # u(tau) = 2 - e^{tau/2}  =>  tau* = 2 ln 2.
        pred = aut_interactions(1000, 0.5)
        assert pred.per_peer == pytest.approx(AUT_HALF_COST, rel=0.01)

    def test_cost_decreases_with_skew_toward_half(self):
        # Cost falls as p grows toward 1/2 (majority finds references faster).
        costs = [aut_cost_per_peer(p) for p in (0.05, 0.15, 0.3, 0.5)]
        assert costs == sorted(costs, reverse=True)

    def test_population_cancels(self):
        assert aut_interactions(100, 0.3).per_peer == pytest.approx(
            aut_interactions(10_000, 0.3).per_peer, rel=0.01
        )

    def test_interactions_scale_with_n(self):
        pred = aut_interactions(500, 0.4)
        assert pred.interactions == pytest.approx(500 * pred.per_peer)

    def test_matches_discrete_simulation(self):
        for p in (0.2, 0.5):
            fluid = aut_interactions(1000, p).per_peer
            sims = [simulate_aut(1000, p, rng=s).per_peer_cost for s in range(10)]
            assert statistics.mean(sims) == pytest.approx(fluid, rel=0.1)

    def test_validation(self):
        with pytest.raises(DomainError):
            aut_interactions(1, 0.4)
        with pytest.raises(DomainError):
            aut_interactions(100, 0.0)
        with pytest.raises(DomainError):
            aut_interactions(100, 0.9)

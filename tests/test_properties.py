"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.estimators import estimate_replica_count, estimate_split_fraction
from repro.core.probabilities import (
    P_STAR,
    alpha_of_p,
    beta_of_p,
    p_of_alpha,
    p_of_beta,
    t_star,
)
from repro.core.reference import reference_partition
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import KEY_BITS, MAX_KEY, bit_at, float_to_key, string_to_key

paths = st.builds(
    lambda bits: Path.from_bits(bits),
    st.lists(st.integers(0, 1), min_size=0, max_size=20),
)

keys = st.integers(min_value=0, max_value=MAX_KEY - 1)


class TestPathProperties:
    @given(paths)
    def test_string_round_trip(self, p):
        if p.length:
            assert Path.from_string(str(p)) == p

    @given(paths, st.integers(0, 1))
    def test_extend_parent_inverse(self, p, bit):
        assert p.extend(bit).parent() == p

    @given(paths)
    def test_sibling_involution(self, p):
        if p.length:
            assert p.sibling().sibling() == p

    @given(paths, paths)
    def test_prefix_relation_matches_interval_containment(self, a, b):
        a_lo, a_hi = a.interval()
        b_lo, b_hi = b.interval()
        if a.is_prefix_of(b):
            assert a_lo <= b_lo and b_hi <= a_hi
        elif a.diverges_from(b):
            assert a_hi <= b_lo or b_hi <= a_lo

    @given(paths, paths)
    def test_common_prefix_symmetry(self, a, b):
        assert a.common_prefix_length(b) == b.common_prefix_length(a)

    @given(paths, keys)
    def test_contains_key_matches_key_range(self, p, key):
        lo, hi = p.key_range(KEY_BITS)
        assert p.contains_key(key, KEY_BITS) == (lo <= key < hi)

    @given(paths, paths)
    def test_overlap_fraction_bounds(self, a, b):
        f = a.overlap_fraction(b)
        assert 0.0 <= f <= 1.0


class TestKeyspaceProperties:
    @given(st.floats(min_value=0.0, max_value=0.9999999, allow_nan=False))
    def test_float_key_monotone(self, x):
        k = float_to_key(x)
        assert 0 <= k < MAX_KEY

    @given(
        st.floats(min_value=0.0, max_value=0.999999, allow_nan=False),
        st.floats(min_value=0.0, max_value=0.999999, allow_nan=False),
    )
    def test_order_preserved(self, a, b):
        if a <= b:
            assert float_to_key(a) <= float_to_key(b)

    @given(st.text(alphabet="abcdefghij", max_size=12),
           st.text(alphabet="abcdefghij", max_size=12))
    def test_string_encoding_monotone(self, a, b):
        if a <= b:
            assert string_to_key(a) <= string_to_key(b)

    @given(keys)
    def test_bits_consistent_with_prefix(self, key):
        for level in range(8):
            assert bit_at(key, level) in (0, 1)


class TestProbabilityProperties:
    @given(st.floats(min_value=P_STAR + 1e-6, max_value=0.5))
    def test_beta_round_trip(self, p):
        assert abs(p_of_beta(beta_of_p(p)) - p) < 1e-8

    @given(st.floats(min_value=1e-4, max_value=P_STAR - 1e-6))
    def test_alpha_round_trip(self, p):
        assert abs(p_of_alpha(alpha_of_p(p)) - p) < 1e-8

    @given(st.floats(min_value=1e-3, max_value=0.5))
    def test_t_star_at_least_ln2(self, p):
        assert t_star(p) >= math.log(2.0) - 1e-9


class TestEstimatorProperties:
    @given(st.sets(keys, min_size=1, max_size=60))
    def test_identical_sets_anchor(self, key_set):
        assert estimate_replica_count(key_set, key_set, 5) == 5.0

    @given(st.sets(keys, min_size=1, max_size=50),
           st.sets(keys, min_size=1, max_size=50))
    def test_replica_estimate_at_least_one(self, a, b):
        est = estimate_replica_count(a, b, 3)
        assert est >= 1.0 or math.isinf(est)

    @given(st.lists(keys, min_size=1, max_size=100))
    def test_split_fraction_in_unit_interval(self, key_list):
        frac = estimate_split_fraction(key_list, 0)
        assert 0.0 <= frac <= 1.0


class TestReferencePartitionProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(keys, min_size=2, max_size=300),
        st.integers(min_value=10, max_value=200),
    )
    def test_peers_conserved_and_leaves_tile(self, key_list, n_peers):
        ref = reference_partition(key_list, n_peers, d_max=20, n_min=2)
        assert abs(ref.total_peers - n_peers) < 1e-6
        intervals = sorted(leaf.path.interval() for leaf in ref.leaves)
        assert intervals[0][0] == 0.0
        assert intervals[-1][1] == 1.0
        for (_, hi), (lo, _) in zip(intervals, intervals[1:]):
            assert hi == lo

    @settings(max_examples=25, deadline=None)
    @given(st.lists(keys, min_size=5, max_size=200))
    def test_keys_partitioned_exactly_once(self, key_list):
        ref = reference_partition(key_list, 50, d_max=15, n_min=2)
        assert ref.total_keys == len(set(key_list))

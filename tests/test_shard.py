"""Tests for the sharded simulation kernel and worker-mode sharding.

Three layers:

* **Kernel units** -- :class:`~repro.simnet.shard.ShardedSimulator`
  staging/barrier mechanics, cancellation across the inbox, compaction,
  and the globally merged ``(time, seq)`` pop order that makes shard
  count invisible.
* **Shard invisibility** -- the tentpole acceptance: one
  :class:`~repro.scenarios.spec.ScenarioSpec` run at shards 1, 2 and 8
  yields byte-identical report digests, including a write scenario
  (replica sync crossing shards) and a restart scenario
  (``abort_inflight`` must fire exactly once per in-flight message even
  when the flight crosses a shard boundary).
* **Worker mode** -- :func:`slice_spec` conservation arithmetic,
  :func:`derive_shard_streams` determinism, :class:`ShardCodec`
  round-trips, and process-pool vs sequential equivalence of
  :func:`run_sharded_scenario`.
"""

import hashlib

import pytest

from repro.exceptions import SimulationError
from repro.pgrid.bits import Path
from repro.scenarios import (
    MessageNetConfig,
    MessageScenarioRunner,
    run_sharded_scenario,
    scenario,
    slice_spec,
)
from repro.simnet.engine import Simulator
from repro.simnet.shard import (
    DEFAULT_MIN_LOOKAHEAD_S,
    ShardCodec,
    ShardPlan,
    ShardedSimulator,
    derive_shard_streams,
)
from repro.simnet.transport import Message


def digest(report) -> str:
    return hashlib.sha256(report.to_json().encode()).hexdigest()


def run_digest(name: str, shards: int, **params) -> str:
    spec = scenario(name, **params)
    cfg = MessageNetConfig(shards=shards) if shards > 1 else None
    return digest(MessageScenarioRunner(spec, net_config=cfg).run())


class TestShardedSimulatorKernel:
    def test_rejects_bad_construction(self):
        with pytest.raises(SimulationError):
            ShardedSimulator(0)
        with pytest.raises(SimulationError):
            ShardedSimulator(2, lookahead=0.0)

    def test_rejects_out_of_range_shard(self):
        sim = ShardedSimulator(2)
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None, shard=2)
        with pytest.raises(SimulationError):
            sim.schedule(1.0, lambda: None, shard=-1)

    def test_merged_order_matches_single_heap(self):
        # The determinism linchpin: whatever lands on whichever shard,
        # execution follows global (time, seq) order -- byte-identical
        # to the single-heap Simulator.
        def workload(sim, shard_of):
            log = []
            for i, delay in enumerate([3.0, 1.0, 2.0, 1.0, 2.5]):
                sim.schedule(
                    delay, lambda i=i: log.append((sim.now, i)),
                    shard=shard_of(i),
                )
            sim.run_all()
            return log

        plain = workload(Simulator(), lambda i: 0)
        sharded = workload(ShardedSimulator(4, lookahead=0.5), lambda i: i % 4)
        assert sharded == plain

    def test_ties_across_shards_break_by_seq(self):
        sim = ShardedSimulator(2, lookahead=10.0)
        log = []
        sim.schedule(1.0, lambda: log.append("a"), shard=1)
        sim.schedule(1.0, lambda: log.append("b"), shard=0)
        sim.run_all()
        assert log == ["a", "b"]  # insertion order, not shard order

    def test_cross_shard_events_stage_through_inbox(self):
        sim = ShardedSimulator(2, lookahead=1.0)
        log = []

        def on_shard_zero():
            # Cross-shard, beyond the current barrier: must stage.
            sim.schedule(5.0, lambda: log.append(sim.current_shard), shard=1)
            assert sim.staged_pending == 1

        sim.schedule(0.5, on_shard_zero, shard=0)
        sim.run_all()
        assert log == [1]
        assert sim.cross_shard_staged == 1
        assert sim.staged_pending == 0

    def test_same_shard_events_never_stage(self):
        sim = ShardedSimulator(4, lookahead=0.001)
        sim.schedule(100.0, lambda: None)  # shard 0 -> current shard 0
        assert sim.staged_pending == 0

    def test_empty_windows_skip_in_one_barrier(self):
        # A long idle gap must cost O(1) barriers, not gap/lookahead.
        sim = ShardedSimulator(2, lookahead=0.01)
        log = []
        sim.schedule(0.005, lambda: log.append("early"), shard=1)
        sim.schedule(1000.0, lambda: log.append("late"), shard=1)
        sim.run_all()
        assert log == ["early", "late"]
        assert sim.barriers <= 4

    def test_shard_inheritance_of_nested_events(self):
        sim = ShardedSimulator(3, lookahead=1.0)
        seen = []

        def outer():
            sim.schedule(0.1, lambda: seen.append(sim.current_shard))

        sim.schedule(0.2, outer, shard=2)
        sim.run_all()
        assert seen == [2]  # timer stays on the scheduling event's shard

    def test_cancel_of_staged_event(self):
        sim = ShardedSimulator(2, lookahead=1.0)
        log = []
        handles = []

        def on_shard_zero():
            handles.append(
                sim.schedule(5.0, lambda: log.append("x"), shard=1)
            )
            sim.cancel(handles[0])

        sim.schedule(0.5, on_shard_zero, shard=0)
        sim.run_all()
        assert log == []
        assert sim.pending == 0

    def test_pending_bounded_under_cancel_churn(self):
        # The heap-compaction invariant must hold per shard too.
        sim = ShardedSimulator(4, lookahead=1.0)
        live = [
            sim.schedule(1000.0 + i, lambda: None, shard=i % 4)
            for i in range(8)
        ]
        for i in range(5_000):
            handle = sim.schedule(1.0 + i * 1e-3, lambda: None, shard=i % 4)
            sim.cancel(handle)
            assert sim.pending <= 2 * (len(live) + 1) + 8
        assert sim.compactions > 0
        sim.run_all()
        assert sim.events_processed == len(live)

    def test_run_until_boundary_and_budget(self):
        sim = ShardedSimulator(2, lookahead=0.5)
        log = []
        sim.schedule(1.0, lambda: log.append("in"), shard=1)
        sim.schedule(10.0, lambda: log.append("out"), shard=0)
        sim.run_until(5.0)
        assert log == ["in"] and sim.now == 5.0
        sim.run_until(20.0)
        assert log == ["in", "out"]

        storm_sim = ShardedSimulator(2)

        def storm():
            storm_sim.schedule(0.001, storm)

        storm_sim.schedule(0.0, storm, shard=1)
        with pytest.raises(SimulationError):
            storm_sim.run_until(1e9, max_events=500)


class TestShardPlan:
    def test_partitions_trie_regions_contiguously(self):
        paths = {
            0: Path(0b00, 2),   # keyspace [0.00, 0.25)
            1: Path(0b01, 2),   # [0.25, 0.50)
            2: Path(0b10, 2),   # [0.50, 0.75)
            3: Path(0b11, 2),   # [0.75, 1.00)
        }
        plan = ShardPlan.from_paths(paths, 2)
        assert plan.shard_of(0) == 0 and plan.shard_of(1) == 0
        assert plan.shard_of(2) == 1 and plan.shard_of(3) == 1
        assert plan.populations() == [2, 2]

    def test_unseen_ids_fall_back_to_modulo(self):
        plan = ShardPlan.from_paths({}, 3)
        assert [plan.shard_of(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_rejects_zero_shards(self):
        with pytest.raises(SimulationError):
            ShardPlan(n_shards=0)


class TestShardCodec:
    def test_round_trip(self):
        payload = {"report": {"queries": 7}, "kernel": {"events": 3}}
        assert ShardCodec.decode(ShardCodec.encode(payload)) == payload

    def test_version_mismatch_fails_loudly(self):
        import pickle

        stale = pickle.dumps((ShardCodec.VERSION + 1, {}), protocol=4)
        with pytest.raises(SimulationError):
            ShardCodec.decode(stale)

    def test_message_round_trip(self):
        message = Message(
            src=3, dst=9, kind="query", payload={"key": 42},
            size_bytes=128, category="query",
        )
        assert ShardCodec.decode_message(
            ShardCodec.encode_message(message)
        ) == message


class TestDeriveShardStreams:
    def test_deterministic_and_prefix_stable(self):
        assert derive_shard_streams(123, 4) == derive_shard_streams(123, 4)
        # More shards extend the stream list; existing seeds never move.
        assert derive_shard_streams(123, 8)[:4] == derive_shard_streams(123, 4)

    def test_rejects_zero_shards(self):
        with pytest.raises(SimulationError):
            derive_shard_streams(1, 0)


class TestShardInvisibility:
    """Same spec, any shard count, byte-identical reports."""

    PARAMS = dict(n_peers=96, seed=5, duration_scale=0.05)

    @pytest.mark.parametrize("shards", [2, 8])
    def test_read_scenario_digest_invariant(self, shards):
        assert run_digest("uniform-baseline", shards, **self.PARAMS) == \
            run_digest("uniform-baseline", 1, **self.PARAMS)

    def test_write_scenario_digest_invariant(self):
        # Replica-sync fan-out crosses shard boundaries constantly.
        assert run_digest("read-write-balanced", 4, **self.PARAMS) == \
            run_digest("read-write-balanced", 1, **self.PARAMS)

    def test_restart_scenario_digest_invariant(self):
        # Restarts abort in-flight messages; an abort that fired twice
        # (or missed a flight staged in a cross-shard inbox) would shift
        # drop accounting and the digest with it.
        assert run_digest("restart-storm", 4, **self.PARAMS) == \
            run_digest("restart-storm", 1, **self.PARAMS)

    def test_barrier_ordering_stable_under_queue_drain_races(self):
        # Tiny lookahead forces maximal staging (every cross-shard
        # delivery rides an inbox and many barrier flushes interleave
        # with heap drains); the digest must still be identical.
        spec = scenario("uniform-baseline", **self.PARAMS)
        baseline = digest(MessageScenarioRunner(spec).run())
        tiny = MessageNetConfig(shards=8, lookahead_s=1e-4)
        assert digest(MessageScenarioRunner(spec, net_config=tiny).run()) == \
            baseline

    def test_sharded_runner_reports_cross_shard_traffic(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        runner = MessageScenarioRunner(
            spec, net_config=MessageNetConfig(shards=4)
        )
        runner.run()
        assert isinstance(runner.simulator, ShardedSimulator)
        assert runner.simulator.barriers > 0
        assert runner.transport.cross_shard_messages > 0
        assert runner.shard_plan is not None
        assert sum(runner.shard_plan.populations()) == self.PARAMS["n_peers"]

    def test_default_lookahead_is_latency_floor(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        cfg = MessageNetConfig(shards=2)
        runner = MessageScenarioRunner(spec, net_config=cfg)
        runner.run()
        expected = max(cfg.latency.floor(), DEFAULT_MIN_LOOKAHEAD_S)
        assert runner.simulator.lookahead == pytest.approx(expected)


class TestSliceSpec:
    def test_conserves_population_and_rates(self):
        spec = scenario("read-write-balanced", n_peers=101, seed=9)
        slices = [
            slice_spec(spec, i, 4, seed=100 + i) for i in range(4)
        ]
        assert sum(s.n_peers for s in slices) == spec.n_peers
        for phase_idx, phase in enumerate(spec.phases):
            shards = [s.phases[phase_idx] for s in slices]
            assert sum(p.join_peers for p in shards) == phase.join_peers
            assert sum(p.leave_peers for p in shards) == phase.leave_peers
            assert sum(p.query_rate for p in shards) == \
                pytest.approx(phase.query_rate)
            if phase.writes is not None:
                assert sum(p.writes.write_rate for p in shards) == \
                    pytest.approx(phase.writes.write_rate)

    def test_confines_workload_to_slice(self):
        spec = scenario("uniform-baseline", n_peers=64, seed=9)
        sub = slice_spec(spec, 2, 4, seed=7)
        assert sub.distribution == f"{spec.distribution}@2/4"
        assert sub.name == f"{spec.name}@2/4"
        assert sub.seed == 7
        for phase in sub.phases:
            hotspot = phase.mix.hotspot
            assert (hotspot.lo, hotspot.hi, hotspot.weight) == (0.5, 0.75, 1.0)
        sub.validate()  # sliced distribution label must stay resolvable

    def test_rejects_bad_slices(self):
        spec = scenario("uniform-baseline", n_peers=64, seed=9)
        with pytest.raises(SimulationError):
            slice_spec(spec, 4, 4, seed=1)
        with pytest.raises(SimulationError):
            slice_spec(scenario("uniform-baseline", n_peers=6, seed=9),
                       0, 4, seed=1)


class TestWorkerMode:
    PARAMS = dict(n_peers=64, seed=7, duration_scale=0.25)

    def test_processes_and_sequential_agree(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        sequential = run_sharded_scenario(spec, shards=4, processes=False)
        forked = run_sharded_scenario(spec, shards=4, processes=True)
        assert sequential.to_json() == forked.to_json()

    def test_merged_schema_matches_single_run(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        single = MessageScenarioRunner(spec).run()
        merged = run_sharded_scenario(spec, shards=4, processes=False)
        assert set(merged.totals) == set(single.totals)
        assert set(merged.message_level) == set(single.message_level)
        assert len(merged.series) == len(single.series)
        assert merged.n_peers_start == single.n_peers_start

    def test_kernel_stats_out_param(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        stats = []
        run_sharded_scenario(
            spec, shards=4, processes=False, kernel_stats=stats
        )
        assert len(stats) == 4
        for entry in stats:
            assert entry["events_processed"] > 0
            assert entry["pending_peak"] > 0
            assert entry["wall_s"] >= 0

    def test_shards_one_is_the_legacy_path(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        assert run_sharded_scenario(spec, shards=1).to_json() == \
            MessageScenarioRunner(spec).run().to_json()

    def test_rejects_zero_shards(self):
        spec = scenario("uniform-baseline", **self.PARAMS)
        with pytest.raises(SimulationError):
            run_sharded_scenario(spec, shards=0)

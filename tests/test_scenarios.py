"""Unit tests for the declarative scenario engine (spec, runner, library)."""

import random

import pytest

from repro.exceptions import DomainError, SimulationError
from repro.scenarios import (
    SCENARIOS,
    ChurnSpec,
    Hotspot,
    PartitionSpec,
    Phase,
    QueryMix,
    ScenarioRunner,
    ScenarioSpec,
    run_scenario,
    scenario,
)
from repro.scenarios.library import (
    correlated_churn,
    flash_crowd,
    mass_join,
    mass_leave,
    paper_sec51_churn,
    regional_outage,
    uniform_baseline,
)
from repro.workloads.queries import POINT, RANGE, QuerySampler


class TestSpecValidation:
    def test_library_specs_validate(self):
        for name in SCENARIOS:
            spec = scenario(name, n_peers=64, seed=1, duration_scale=0.1)
            spec.validate()  # should not raise
            assert spec.name == name
            assert spec.duration_s > 0

    def test_registry_is_complete(self):
        assert sorted(SCENARIOS) == [
            "asymmetric-partition-writes",
            "cache-coherence-storm",
            "correlated-churn",
            "correlated-hotspot-2d",
            "datacenter-power-cycle",
            "flash-crowd",
            "geo-box-serving",
            "mass-join",
            "mass-leave",
            "paper-sec51-churn",
            "pareto-hotspot",
            "read-write-balanced",
            "regional-outage",
            "restart-storm",
            "rolling-deploy",
            "uniform-baseline",
            "write-hotspot-adversarial",
            "zipf-serving",
        ]

    def test_unknown_scenario_name(self):
        with pytest.raises(DomainError):
            scenario("no-such-scenario")

    def test_empty_phases_rejected(self):
        with pytest.raises(SimulationError):
            ScenarioSpec(name="x", phases=()).validate()

    def test_negative_duration_rejected(self):
        spec = ScenarioSpec(name="x", phases=(Phase(name="p", duration_s=-1.0),))
        with pytest.raises(SimulationError):
            spec.validate()

    def test_bad_distribution_rejected(self):
        spec = ScenarioSpec(
            name="x",
            phases=(Phase(name="p", duration_s=10.0),),
            distribution="nope",
        )
        with pytest.raises(SimulationError):
            spec.validate()

    def test_bad_hotspot_rejected(self):
        mix = QueryMix(hotspot=Hotspot(lo=0.5, hi=0.4))
        spec = ScenarioSpec(
            name="x", phases=(Phase(name="p", duration_s=10.0, mix=mix),)
        )
        with pytest.raises(SimulationError):
            spec.validate()

    def test_bad_churn_fraction_rejected(self):
        churn = ChurnSpec(fraction=0.0)
        spec = ScenarioSpec(
            name="x", phases=(Phase(name="p", duration_s=10.0, churn=churn),)
        )
        with pytest.raises(SimulationError):
            spec.validate()

    @pytest.mark.parametrize(
        "fractions",
        [(1.0,), (0.8, -0.2), (0.5, 0.4)],  # 1 region / negative / sum != 1
    )
    def test_bad_partition_fractions_rejected(self, fractions):
        spec = ScenarioSpec(
            name="x",
            phases=(
                Phase(
                    name="p",
                    duration_s=10.0,
                    partitions=PartitionSpec(fractions=fractions),
                ),
            ),
        )
        with pytest.raises(SimulationError):
            spec.validate()

    def test_partition_spec_survives_scaling(self):
        spec = regional_outage(n_peers=64, seed=1).scaled(0.5)
        outage = spec.phases[1]
        assert outage.partitions is not None
        assert outage.partitions.fractions == (0.8, 0.2)

    def test_scaled_dilates_everything(self):
        spec = paper_sec51_churn(n_peers=64, seed=1)
        half = spec.scaled(0.5)
        assert half.duration_s == pytest.approx(spec.duration_s / 2)
        assert half.report_bin_s == pytest.approx(spec.report_bin_s / 2)
        churn = half.phases[1].churn
        assert churn.min_offline_s == pytest.approx(30.0)
        assert half.phases[1].maintenance_interval_s == pytest.approx(60.0)

    def test_boundaries_partition_the_timeline(self):
        spec = flash_crowd(n_peers=64, seed=1)
        bounds = spec.boundaries()
        assert bounds[0][0] == 0.0
        assert bounds[-1][1] == pytest.approx(spec.duration_s)
        for (_, a_end), (b_start, _) in zip(bounds, bounds[1:]):
            assert a_end == pytest.approx(b_start)


class TestPartitionScenarios:
    def test_regional_outage_dips_and_recovers_on_dataplane(self):
        # The data plane approximates the cut as a correlated departure
        # of the minority region: the online series dips during the
        # outage phase and recovers to full population at the heal.
        report = ScenarioRunner(
            regional_outage(n_peers=48, seed=7, duration_scale=0.2)
        ).run()
        online = [row["online"] for row in report.series if row["online"] is not None]
        assert min(online) < 48  # the outage is visible
        assert report.totals["final_online"] == 48  # and fully healed
        assert report.totals["final_coverage"] == 1.0

    def test_regional_outage_drops_cross_region_messages_on_the_wire(self):
        report = run_scenario(
            regional_outage(n_peers=48, seed=7, duration_scale=0.2),
            backend="message",
        )
        assert report.message_level["drops"]["partition"] > 0
        # The refused sends fed the repair machinery.
        assert report.message_level["repair"]["suspects"] > 0

    def test_correlated_churn_cuts_different_regions_per_wave(self):
        spec = correlated_churn(n_peers=64, seed=3, duration_scale=0.2)
        runner = ScenarioRunner(spec)
        cuts = []
        original = ScenarioRunner._set_partitions

        def spy(self, groups):
            cuts.append(frozenset(pid for g in groups[1:] for pid in g))
            original(self, groups)

        ScenarioRunner._set_partitions = spy
        try:
            runner.run()
        finally:
            ScenarioRunner._set_partitions = original
        assert len(cuts) == 3  # one cut per wave
        assert len(set(cuts)) == 3  # each wave severs a different region

    def test_both_backends_run_every_partition_scenario(self):
        for factory in (regional_outage, correlated_churn):
            spec = factory(n_peers=32, seed=11, duration_scale=0.1)
            fast = run_scenario(spec)
            wire = run_scenario(spec, backend="message")
            assert fast.totals["queries"] > 0
            assert wire.totals["queries"] > 0
            assert fast.n_peers_end == wire.n_peers_end == 32


class TestQuerySampler:
    def test_pure_point_mix(self):
        sampler = QuerySampler(point_weight=1.0, range_weight=0.0)
        rng = random.Random(1)
        assert all(sampler.draw_kind(rng) == POINT for _ in range(50))

    def test_mixed_weights_roughly_respected(self):
        sampler = QuerySampler(point_weight=0.5, range_weight=0.5)
        rng = random.Random(2)
        kinds = [sampler.draw_kind(rng) for _ in range(2000)]
        share = kinds.count(RANGE) / len(kinds)
        assert 0.4 < share < 0.6

    def test_hotspot_concentrates_targets(self):
        from repro.pgrid.keyspace import MAX_KEY

        sampler = QuerySampler(hotspot=(0.4, 0.42, 0.9))
        rng = random.Random(3)
        keys = [sampler.draw_point_key(rng) for _ in range(2000)]
        hot = sum(1 for k in keys if 0.4 <= k / MAX_KEY < 0.42)
        assert hot / len(keys) > 0.8

    def test_range_span_and_bounds(self):
        from repro.pgrid.keyspace import MAX_KEY

        sampler = QuerySampler(range_weight=1.0, point_weight=0.0, range_span=0.05)
        rng = random.Random(4)
        for _ in range(200):
            lo, hi = sampler.draw_range(rng)
            assert 0 <= lo < hi <= MAX_KEY
            assert (hi - lo) / MAX_KEY == pytest.approx(0.05, rel=1e-9)

    def test_invalid_mix_rejected(self):
        with pytest.raises(DomainError):
            QuerySampler(point_weight=0.0, range_weight=0.0)
        with pytest.raises(DomainError):
            QuerySampler(hotspot=(0.9, 0.1, 0.5))


class TestRunner:
    def test_baseline_fully_succeeds(self):
        report = ScenarioRunner(
            uniform_baseline(n_peers=48, seed=5, duration_scale=0.1)
        ).run()
        assert report.totals["queries"] > 50
        assert report.totals["success_rate"] == 1.0
        assert report.totals["range_incomplete"] == 0
        assert report.totals["final_coverage"] == 1.0
        assert report.n_peers_end == report.n_peers_start == 48
        assert all(row["online"] in (None, 48) for row in report.series)

    def test_mass_leave_shrinks_population(self):
        report = ScenarioRunner(
            mass_leave(n_peers=48, seed=5, duration_scale=0.1)
        ).run()
        assert report.totals["leaves"] == 12
        assert report.totals["final_online"] == 36
        # Queries keep flowing after the exodus (repair carries them).
        assert report.phases[-1]["success_rate"] > 0.5

    def test_mass_join_grows_population(self):
        report = ScenarioRunner(
            mass_join(n_peers=48, seed=5, duration_scale=0.1)
        ).run()
        assert report.totals["joins"] == 12
        assert report.n_peers_end == 60
        assert report.totals["bytes_maintenance"] > 0

    def test_flash_crowd_surges_queries(self):
        report = ScenarioRunner(
            flash_crowd(n_peers=48, seed=5, duration_scale=0.1)
        ).run()
        calm, flash, cooldown = report.phases
        # The flash phase runs at 4x the query rate of its neighbors.
        assert flash["queries"] > 2 * calm["queries"]
        assert flash["queries"] > 2 * cooldown["queries"]

    def test_churn_scenario_reports_series(self):
        report = ScenarioRunner(
            paper_sec51_churn(n_peers=48, seed=5, duration_scale=0.2)
        ).run()
        assert report.totals["churn_transitions"] > 0
        # The acceptance-criteria series: success rate and bandwidth
        # over time must both be populated.
        assert len(report.success_rate_series()) > 3
        assert len(report.bandwidth_series()) > 3
        assert any(maint > 0 for _, _, maint in report.bandwidth_series())
        # Some bin saw a reduced population.
        assert min(
            row["online"] for row in report.series if row["online"] is not None
        ) < 48

    def test_runner_exposes_network_and_simulator(self):
        runner = ScenarioRunner(uniform_baseline(n_peers=32, seed=1, duration_scale=0.05))
        report = runner.run()
        assert runner.network is not None
        assert len(runner.network.peers) == report.n_peers_end
        assert runner.simulator.now >= report.duration_s

    def test_report_json_round_trips(self):
        import json

        report = ScenarioRunner(
            uniform_baseline(n_peers=32, seed=1, duration_scale=0.05)
        ).run()
        payload = json.loads(report.to_json())
        assert payload["scenario"] == "uniform-baseline"
        assert payload["totals"]["queries"] == report.totals["queries"]
        assert len(payload["series"]) == len(report.series)

"""Message-level scenario backend: determinism, protocol and reporting.

Four layers of protection for ``MessageScenarioRunner``:

* **Golden trace**: a small scenario's full report is pinned byte-for-
  byte (``tests/data/scenario_message_golden.json``).  Regenerate
  deliberately with::

      PYTHONPATH=src python -c "
      from repro.scenarios import run_scenario, scenario
      spec = scenario('uniform-baseline', n_peers=24, seed=11, duration_scale=0.2)
      print(run_scenario(spec, backend='message').to_json())" \
          > tests/data/scenario_message_golden.json

* **Full-population digests**: every library scenario at N=1024 is
  pinned as a SHA-256 of its report JSON
  (``tests/data/scenario_message_digests.json``; see
  ``tests/data/regen_message_digests.py``) -- the acceptance-level
  "the whole library runs deterministically at N>=1024" guarantee.
* **Protocol-level tests** drive the message-level range traversal and
  timeout/retry paths on hand-built overlays.
* **Structural invariants**: :meth:`MessageScenarioRunner.as_network`
  exposes the end state to the same checks as the data-plane backend.
"""

import hashlib
import json
import pathlib

import pytest

from repro.exceptions import DomainError
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key
from repro.scenarios import (
    BACKENDS,
    MessageNetConfig,
    MessageScenarioRunner,
    Phase,
    RouteRepairPolicy,
    ScenarioSpec,
    run_scenario,
    runner_for,
    scenario,
)
from repro.scenarios.invariants import (
    check_partition_tiling,
    check_routing_complementarity,
)
from repro.simnet.engine import Simulator
from repro.simnet.node import NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN_PATH = DATA / "scenario_message_golden.json"
DIGESTS_PATH = DATA / "scenario_message_digests.json"

#: The pinned configuration of the message-backend golden trace.
GOLDEN_SPEC = dict(n_peers=24, seed=11, duration_scale=0.2)


def run_json(name, **kwargs):
    return run_scenario(scenario(name, **kwargs), backend="message").to_json()


class TestDeterminism:
    @pytest.mark.parametrize(
        "name, kwargs",
        [
            ("uniform-baseline", dict(n_peers=24, seed=11, duration_scale=0.1)),
            ("paper-sec51-churn", dict(n_peers=32, seed=3, duration_scale=0.1)),
            ("mass-join", dict(n_peers=32, seed=3, duration_scale=0.1)),
        ],
    )
    def test_same_seed_reproduces_byte_identical_reports(self, name, kwargs):
        assert run_json(name, **kwargs) == run_json(name, **kwargs)

    def test_different_seeds_differ(self):
        a = run_json("uniform-baseline", n_peers=24, seed=1, duration_scale=0.1)
        b = run_json("uniform-baseline", n_peers=24, seed=2, duration_scale=0.1)
        assert a != b

    def test_backends_differ_but_share_the_spec(self):
        spec = scenario("uniform-baseline", n_peers=24, seed=11, duration_scale=0.1)
        wire = run_scenario(spec, backend="message")
        fast = run_scenario(spec, backend="dataplane")
        assert wire.scenario == fast.scenario
        assert wire.n_peers_start == fast.n_peers_start
        assert wire.message_level is not None
        assert fast.message_level is None

    def test_golden_trace_matches_fixture(self):
        produced = run_json("uniform-baseline", **GOLDEN_SPEC)
        pinned = GOLDEN_PATH.read_text().strip()
        if produced != pinned:
            got, want = json.loads(produced), json.loads(pinned)
            for key in want:
                assert got[key] == want[key], f"golden mismatch in section {key!r}"
        assert produced == pinned

    def test_all_library_scenarios_deterministic_at_full_population(self):
        """Acceptance: every library scenario runs deterministically
        under MessageScenarioRunner at N=1024 (digest-pinned)."""
        pinned = json.loads(DIGESTS_PATH.read_text())
        params = dict(
            n_peers=pinned["n_peers"],
            seed=pinned["seed"],
            duration_scale=pinned["duration_scale"],
        )
        assert params["n_peers"] >= 1024
        for name, want in sorted(pinned["digests"].items()):
            produced = hashlib.sha256(run_json(name, **params).encode()).hexdigest()
            assert produced == want, f"message-backend digest drift in {name!r}"


class TestBackendSelector:
    def test_registry_names(self):
        assert set(BACKENDS) == {"dataplane", "message"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(DomainError):
            runner_for("carrier-pigeon")

    def test_runner_for_returns_classes(self):
        assert runner_for("message") is MessageScenarioRunner

    def test_run_scenario_forwards_net_config(self):
        spec = scenario("uniform-baseline", n_peers=24, seed=11, duration_scale=0.1)
        lossless = run_scenario(
            spec,
            backend="message",
            net_config=MessageNetConfig(latency=ConstantLatency(0.01), loss_rate=0.0),
        )
        assert lossless.message_level["drops"]["loss"] == 0
        assert lossless.message_level["config"]["latency_model"] == "ConstantLatency"
        assert lossless.totals["success_rate"] == 1.0


class TestMessageLevelReport:
    @pytest.fixture(scope="class")
    def report(self):
        spec = scenario("paper-sec51-churn", n_peers=48, seed=7, duration_scale=0.15)
        return run_scenario(spec, backend="message")

    def test_wire_metrics_present(self, report):
        ml = report.message_level
        assert ml["messages_sent"] > 0
        assert ml["latency_s"]["count"] > 0
        assert 0 < ml["latency_s"]["p50"] <= ml["latency_s"]["p99"] <= ml["latency_s"]["max"]
        assert ml["inflight_peak"] >= 1
        assert ml["links"]["used"] > 0
        assert ml["links"]["max_bytes"] >= ml["links"]["mean_bytes"]
        assert set(ml["drops"]) == {"offline", "loss", "partition"}
        assert (
            ml["drops"]["offline"] + ml["drops"]["loss"] + ml["drops"]["partition"]
            == ml["messages_dropped"]
        )

    def test_totals_come_from_the_wire(self, report):
        # Bandwidth totals are transport-accounted, not the nominal model.
        assert report.totals["messages"] == report.message_level["messages_sent"]
        assert report.totals["bytes_total"] > 0
        assert report.totals["success_rate"] > 0.5  # churn, but retries recover

    def test_series_carries_wire_bandwidth(self, report):
        assert any(row["query_Bps"] > 0 for row in report.series)

    def test_churn_and_timeouts_observed(self, report):
        assert report.totals["churn_transitions"] > 0
        ml = report.message_level
        assert ml["timeouts"] + ml["retries"] + ml["messages_dropped"] > 0


class TestMembershipAndStructure:
    def test_mass_join_grows_population_over_the_wire(self):
        spec = scenario("mass-join", n_peers=32, seed=3, duration_scale=0.1)
        runner = MessageScenarioRunner(spec)
        report = runner.run()
        assert report.totals["joins"] > 0
        assert report.n_peers_end == 32 + report.totals["joins"]
        # Newcomers really joined the transport.
        assert len(runner.nodes) == report.n_peers_end

    def test_mass_leave_degrades_but_keeps_coverage(self):
        spec = scenario("mass-leave", n_peers=32, seed=3, duration_scale=0.1)
        report = run_scenario(spec, backend="message")
        assert report.totals["leaves"] > 0
        assert report.totals["final_coverage"] == 1.0

    def test_as_network_passes_structural_invariants(self):
        # No maintenance -> no exchanges -> the ideal structure must
        # survive a query/churn-only scenario untouched.
        spec = ScenarioSpec(
            name="invariant-probe",
            phases=(Phase(name="steady", duration_s=120.0, query_rate=2.0),),
            n_peers=32,
            seed=13,
            report_bin_s=30.0,
        )
        runner = MessageScenarioRunner(spec)
        runner.run()
        net = runner.as_network()
        check_partition_tiling(net)
        check_routing_complementarity(net)
        assert net.is_consistent()


def build_wire(paths_and_keys, *, latency=0.01, loss=0.0, config=None):
    """Hand-built message-level overlay: one node per path string."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), loss_rate=loss, rng=1)
    config = config or NodeConfig(query_retries=2, query_timeout=5.0)
    nodes = []
    for node_id, (path, keys) in enumerate(paths_and_keys):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = set(keys)
        node.joined = True
        nodes.append(node)
    # Full complementary routing for the standard 2-level quadrant split.
    for node in nodes:
        for other in nodes:
            if other is node:
                continue
            cpl = node.path.common_prefix_length(other.path)
            if cpl < node.path.length:
                node.add_route(cpl, other.node_id)
    return sim, net, nodes


QUADRANTS = [
    ("00", [float_to_key(0.05), float_to_key(0.2)]),
    ("01", [float_to_key(0.3), float_to_key(0.45)]),
    ("10", [float_to_key(0.55), float_to_key(0.7)]),
    ("11", [float_to_key(0.8), float_to_key(0.95)]),
]


class TestLazyTimerHeapHygiene:
    """A timeout storm must leave no cancelled heap placeholders: the
    lazy-timer scheme re-arms one event per pending op instead of
    cancel-and-reschedule, so ``pending_cancelled`` stays 0 even when
    the timers actually fire."""

    def test_wire_level_timeout_storm_never_cancels(self):
        # 60% loss: most attempts die on the wire, so their deadline
        # timers genuinely expire instead of being superseded.
        sim, net, nodes = build_wire(QUADRANTS, loss=0.6)
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        for i in range(40):
            nodes[0].issue_query(float_to_key(0.55 + i * 0.01))
        sim.run_until(400.0)
        assert len(outcomes) == 40  # every query resolved, pass or fail
        assert sum(out.timeouts for out in outcomes) > 10  # a real storm
        assert sim.pending_cancelled == 0
        assert sim.compactions == 0

    def test_lossy_scenario_keeps_the_heap_clean_end_to_end(self):
        spec = scenario("uniform-baseline", n_peers=32, seed=5, duration_scale=0.1)
        runner = MessageScenarioRunner(
            spec, net_config=MessageNetConfig(loss_rate=0.3)
        )
        report = runner.run()
        assert report.message_level["timeouts"] > 0  # storm premise
        assert runner.simulator.pending_cancelled == 0


class TestRangeProtocol:
    def test_range_traverses_partitions_in_key_order(self):
        sim, net, nodes = build_wire(QUADRANTS)
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.1), float_to_key(0.9))
        sim.run_until(60.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert out.success
        # Keys 0.2 .. 0.8 fall inside [0.1, 0.9): six of the eight.
        assert out.keys_found == 6
        assert out.attempts == 1
        # Three partition boundaries crossed after the origin's own slice.
        assert out.hops == 3
        assert out.messages >= out.hops

    def test_range_confined_to_origin_partition_completes_locally(self):
        sim, net, nodes = build_wire(QUADRANTS)
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.01), float_to_key(0.24))
        sent_before = net.messages_sent
        sim.run_until(60.0)
        assert outcomes and outcomes[0].success
        assert outcomes[0].keys_found == 2
        assert net.messages_sent == sent_before  # never left the node

    def test_lost_middle_slice_triggers_retry_not_silent_success(self):
        # Drop the first result slice arriving from quadrant 10: the
        # final done-flagged part still arrives, but the origin must
        # notice the coverage gap and retry instead of reporting a
        # silently incomplete success.
        sim, net, nodes = build_wire(QUADRANTS)
        original = nodes[0]._on_range_part
        dropped = []

        def lossy(msg):
            if msg.src == 2 and not dropped:
                dropped.append(msg)
                return  # simulate the wire eating this one slice
            original(msg)

        nodes[0]._on_range_part = lossy
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.1), float_to_key(0.9))
        sim.run_until(120.0)
        assert dropped, "test premise: a slice from node 2 was dropped"
        assert len(outcomes) == 1
        out = outcomes[0]
        assert out.success
        assert out.keys_found == 6  # nothing silently missing
        assert out.attempts == 2  # the gap forced exactly one retry

    def test_stale_timers_do_not_burn_the_retry_budget(self):
        # Slow links + early stuck replies: each attempt's timeout timer
        # must be superseded by the retry its dead-end reply triggered,
        # not fire against the newer attempt (phantom timeouts used to
        # exhaust the budget while an attempt was still in flight).
        config = NodeConfig(query_retries=2, query_timeout=5.0)
        sim, net, nodes = build_wire(QUADRANTS, latency=2.0, config=config)
        nodes[1].routing.pop(0, None)  # dead end after quadrant 01
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.1), float_to_key(0.9))
        sim.run_until(300.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.attempts == 3  # full budget spent on real attempts
        assert out.timeouts == 0  # every retry came from a stuck reply

    def test_transient_dead_end_recovers_on_retry(self):
        config = NodeConfig(query_retries=2, query_timeout=5.0)
        sim, net, nodes = build_wire(QUADRANTS, latency=2.0, config=config)
        saved = nodes[1].routing.pop(0)  # sever, then heal mid-flight
        sim.schedule(5.0, lambda: nodes[1].routing.__setitem__(0, saved))
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.1), float_to_key(0.9))
        sim.run_until(300.0)
        assert len(outcomes) == 1
        assert outcomes[0].success
        assert outcomes[0].keys_found == 6
        assert outcomes[0].attempts >= 2

    def test_dead_end_exhausts_retries_and_fails(self):
        sim, net, nodes = build_wire(QUADRANTS)
        # Sever the forward path out of quadrant 01: the traversal from
        # 00 reaches 01 and then has nowhere to send the remainder.
        nodes[1].routing.pop(0, None)
        outcomes = []
        nodes[0].on_range_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_range_query(float_to_key(0.1), float_to_key(0.9))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.attempts == 3  # 1 + query_retries
        # The partial slices that did arrive were still collected.
        assert out.keys_found >= 2


class TestPointQueryOutcomes:
    def test_offline_responsible_times_out_then_fails_without_repair(self):
        # Blind routing (the PR-3 baseline, repair disabled): nobody
        # observes the refused connects, so every attempt burns a full
        # timeout before failing.
        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(QUADRANTS, config=config)
        nodes[3].online = False  # the only holder of quadrant 11
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.timeouts >= 1
        assert out.attempts == 3

    def test_offline_responsible_fails_fast_with_repair(self):
        # With repair on, the refused connects are evidence: the dead
        # quadrant's references are evicted and the attempts dead-end
        # immediately instead of waiting out timeouts.
        sim, net, nodes = build_wire(QUADRANTS)
        nodes[3].online = False
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        out = outcomes[0]
        assert not out.success
        assert out.timeouts == 0  # every failure was locally observed
        assert out.latency < 1.0  # no 5s timeout windows burned
        assert nodes[0].liveness.evictions >= 1

    def test_local_hit_still_reports_via_callback(self):
        sim, net, nodes = build_wire(QUADRANTS)
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        qid = nodes[0].issue_query(float_to_key(0.05))
        assert not outcomes  # resolution is an event, never re-entrant
        sim.run_until(10.0)
        assert [out for out in outcomes if out.success]
        assert outcomes[0].hops == 0
        assert qid > 0

    def test_origin_going_offline_marks_query_moot(self):
        # Repair off keeps the attempts on the slow timeout path, so the
        # origin is offline by the time its timer fires -- the moot case.
        config = NodeConfig(
            query_retries=2, query_timeout=5.0,
            repair=RouteRepairPolicy(enabled=False),
        )
        sim, net, nodes = build_wire(QUADRANTS, config=config)
        nodes[3].online = False
        outcomes = []
        nodes[0].on_query_done = lambda nid, qid, out: outcomes.append(out)
        nodes[0].issue_query(float_to_key(0.85))
        sim.schedule(2.0, lambda: nodes[0].set_online(False))
        sim.run_until(120.0)
        assert len(outcomes) == 1
        assert outcomes[0].moot
        assert not outcomes[0].success
        # Moot queries stay out of the experiment-level statistics.
        assert nodes[0].query_results == []

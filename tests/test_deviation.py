"""Tests for the load-balance deviation metric."""

import random

import pytest

from repro.core.deviation import attribute_peers, load_balance_deviation
from repro.core.reference import reference_partition
from repro.exceptions import PartitionError
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import float_to_key


def make_reference(seed=0, peers=64):
    rand = random.Random(seed)
    keys = [float_to_key(rand.random()) for _ in range(800)]
    return reference_partition(keys, peers, d_max=50, n_min=5, integer_peers=True)


class TestAttribution:
    def test_mass_conserved(self):
        ref = make_reference()
        peer_paths = [leaf.path for leaf in ref.leaves for _ in range(3)]
        masses = attribute_peers(peer_paths, ref)
        assert sum(masses) == pytest.approx(len(peer_paths))

    def test_exact_leaf_paths_attribute_fully(self):
        ref = make_reference()
        target = ref.leaves[0].path
        masses = attribute_peers([target], ref)
        assert masses[0] == pytest.approx(1.0)
        assert sum(masses[1:]) == pytest.approx(0.0)

    def test_coarse_peer_spreads_over_leaves(self):
        ref = make_reference()
        # A root-path peer spreads its mass over every leaf by width.
        masses = attribute_peers([Path()], ref)
        assert sum(masses) == pytest.approx(1.0)
        assert all(m > 0 for m in masses)

    def test_deep_peer_attributes_to_containing_leaf(self):
        ref = make_reference()
        deep = ref.leaves[2].path.extend(0).extend(1)
        masses = attribute_peers([deep], ref)
        assert masses[2] == pytest.approx(1.0)

    def test_rejects_empty_reference(self):
        from repro.core.reference import ReferencePartition

        with pytest.raises(PartitionError):
            attribute_peers([Path()], ReferencePartition(leaves=[]))


class TestDeviation:
    def test_zero_for_perfect_match(self):
        ref = make_reference()
        peer_paths = []
        for leaf in ref.leaves:
            peer_paths.extend([leaf.path] * int(leaf.n_peers))
        assert load_balance_deviation(peer_paths, ref) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_mismatch(self):
        ref = make_reference()
        # Pile every peer onto the first leaf.
        peer_paths = [ref.leaves[0].path] * int(ref.total_peers)
        assert load_balance_deviation(peer_paths, ref) > 0.5

    def test_monotone_in_imbalance(self):
        ref = make_reference()
        balanced = []
        for leaf in ref.leaves:
            balanced.extend([leaf.path] * int(leaf.n_peers))
        slightly_off = list(balanced)
        slightly_off[0] = ref.leaves[-1].path
        very_off = [ref.leaves[0].path] * len(balanced)
        d0 = load_balance_deviation(balanced, ref)
        d1 = load_balance_deviation(slightly_off, ref)
        d2 = load_balance_deviation(very_off, ref)
        assert d0 < d1 < d2

    def test_scale_invariance(self):
        # Doubling both populations leaves the metric unchanged.
        ref = make_reference()
        paths_1x = []
        for leaf in ref.leaves:
            paths_1x.extend([leaf.path] * int(leaf.n_peers))
        rand = random.Random(0)
        keys = [float_to_key(rand.random()) for _ in range(800)]
        ref2 = reference_partition(
            keys, 2 * int(ref.total_peers), d_max=50, n_min=10, integer_peers=True
        )
        # Direct construction: same leaves, doubled counts.
        if [l.path for l in ref2.leaves] == [l.path for l in ref.leaves]:
            paths_2x = []
            for leaf in ref2.leaves:
                paths_2x.extend([leaf.path] * int(leaf.n_peers))
            assert load_balance_deviation(paths_2x, ref2) == pytest.approx(
                load_balance_deviation(paths_1x, ref), abs=0.05
            )

"""Tests for the comparison baselines (Secs. 4.3, 6)."""

import random

import pytest

from repro.baselines.hashdht import HashDHT, PrefixHashTree
from repro.baselines.sequential import compare_constructions
from repro.exceptions import DomainError
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.network import PGridNetwork
from repro.workloads.datasets import uniform_keys


class TestHashDHT:
    def test_put_get_round_trip(self):
        dht = HashDHT(32, rng=1)
        dht.put("alpha", 123)
        value, hops = dht.get("alpha")
        assert value == 123
        assert hops == dht.lookup_cost()

    def test_missing_key(self):
        dht = HashDHT(8, rng=2)
        value, _ = dht.get("nothing")
        assert value is None

    def test_lookup_cost_logarithmic(self):
        assert HashDHT(64, rng=1).lookup_cost() == 6
        assert HashDHT(1024, rng=1).lookup_cost() == 10

    def test_storage_balanced_by_hashing(self):
        dht = HashDHT(16, rng=3)
        for i in range(1600):
            dht.put(f"key-{i}", i)
        loads = dht.storage_load()
        assert sum(loads) == 1600

    def test_validation(self):
        with pytest.raises(DomainError):
            HashDHT(0)


class TestPrefixHashTree:
    def _keys(self, n=300, seed=0):
        rand = random.Random(seed)
        return [float_to_key(rand.random()) for _ in range(n)]

    def test_range_query_correctness(self):
        keys = self._keys()
        dht = HashDHT(64, rng=1)
        pht = PrefixHashTree(dht, leaf_capacity=20)
        pht.build(keys)
        lo, hi = float_to_key(0.3), float_to_key(0.7)
        res = pht.range_query(lo, hi)
        assert res.keys == {k for k in keys if lo <= k < hi}

    def test_range_query_pays_per_trie_node(self):
        keys = self._keys()
        dht = HashDHT(64, rng=1)
        pht = PrefixHashTree(dht, leaf_capacity=20)
        pht.build(keys)
        res = pht.range_query(float_to_key(0.1), float_to_key(0.9))
        assert res.trie_nodes_visited >= 3
        assert res.hops == res.dht_lookups * dht.lookup_cost()

    def test_pht_costlier_than_pgrid_trie(self):
        # The Sec. 6 claim: in-network trie beats index-on-top-of-DHT.
        keys = self._keys(400, seed=5)
        dht = HashDHT(64, rng=1)
        pht = PrefixHashTree(dht, leaf_capacity=25)
        pht.build(keys)
        net = PGridNetwork.ideal(keys, 64, d_max=25, n_min=2, rng=2)
        lo, hi = float_to_key(0.2), float_to_key(0.8)
        pht_cost = pht.range_query(lo, hi).hops
        pgrid_cost = net.range_query(lo, hi, rng=3).messages
        assert pht_cost > pgrid_cost

    def test_narrow_range_cheap(self):
        keys = self._keys()
        pht = PrefixHashTree(HashDHT(64, rng=1), leaf_capacity=20)
        pht.build(keys)
        target = sorted(keys)[10]
        res = pht.range_query(target, target + 1)
        assert res.keys == {target}

    def test_validation(self):
        dht = HashDHT(8, rng=1)
        with pytest.raises(DomainError):
            PrefixHashTree(dht, leaf_capacity=0)
        pht = PrefixHashTree(dht)
        with pytest.raises(DomainError):
            pht.insert(-1)
        with pytest.raises(DomainError):
            pht.range_query(10, 5)


class TestSequentialVsParallel:
    def test_parallel_latency_much_lower(self):
        pk = uniform_keys(peers=64, keys_per_peer=10, seed=11)
        cmp = compare_constructions(pk, n_min=3, d_max=30, rng=1)
        # Sequential latency is serialized messages; parallel finishes in
        # tens of rounds -- orders of magnitude apart (Sec. 4.3).
        assert cmp.latency_speedup > 5.0

    def test_message_totals_same_order(self):
        pk = uniform_keys(peers=64, keys_per_peer=10, seed=11)
        cmp = compare_constructions(pk, n_min=3, d_max=30, rng=1)
        ratio = cmp.parallel_interactions / max(cmp.sequential_messages, 1)
        assert 0.05 < ratio < 50.0

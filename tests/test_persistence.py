"""Persistence & recovery: snapshots, the crash model, warm rejoin.

Four layers, mirroring the subsystem's span (see
:mod:`repro.pgrid.state`):

* **Snapshot layer**: versioned dict round-trips on both backends
  (data-plane ``PGridPeer`` via ``PGridNetwork.checkpoint_peer`` /
  ``restore_peer``; message-backend ``PGridNode.snapshot_state`` /
  ``restore_state``), schema/identity guards, ``StateStore`` and
  ``DurabilityPolicy`` validation.
* **Clock semantics**: tombstone TTLs keep aging across downtime;
  re-gossip does not refresh a certificate's birth stamp; restored
  routing refs come back *unconfirmed* so the liveness machine probes
  them before trusting them.
* **Restart hygiene**: ``abort_inflight`` + ``set_online(False)`` with
  in-flight queries/writes/ranges must not leak pending timers or let
  stale attempts burn retry budgets after a warm rejoin.
* **Scenario properties**: across clean shutdown + restore no acked
  write is lost and no tombstone resurrects (both backends); the crash
  and cold-rejoin models quantify both through the report's
  ``recovery`` section; restart scenarios stay deterministic; warm
  rejoin beats cold on recovery time and maintenance bytes.
"""

import random

import pytest

from repro.exceptions import DomainError, PartitionError, SimulationError
from repro.pgrid.bits import Path
from repro.pgrid.keyspace import KEY_BITS, float_to_key
from repro.pgrid.network import PGridNetwork
from repro.pgrid.state import (
    SCHEMA,
    DurabilityPolicy,
    StateStore,
    snapshot_node,
)
from repro.scenarios import (
    MessageNetConfig,
    MessageScenarioRunner,
    ScenarioRunner,
    run_scenario,
    scenario,
)
from repro.scenarios.invariants import check_partition_tiling
from repro.scenarios.spec import RestartSpec
from repro.simnet.engine import Simulator
from repro.simnet.node import NodeConfig, PGridNode
from repro.simnet.transport import ConstantLatency, Network


def ideal_net(n_peers=32, n_keys=300, seed=3):
    rand = random.Random(seed)
    keys = [float_to_key(rand.random()) for _ in range(n_keys)]
    return PGridNetwork.ideal(keys, n_peers, d_max=40, n_min=3, rng=1)


def build_wire(*, latency=0.01, config=None):
    """Quadrant overlay with a replica twin of quadrant 11 (same shape
    as the write-path tests)."""
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(latency), rng=1)
    config = config or NodeConfig(query_retries=2, query_timeout=5.0)
    nodes = []
    quads = [
        ("00", [0.05, 0.2]), ("01", [0.3, 0.45]),
        ("10", [0.55, 0.7]), ("11", [0.8, 0.95]),
    ]
    for node_id, (path, floats) in enumerate(quads):
        node = PGridNode(node_id, sim, net, config=config, rng=node_id + 1)
        node.path = Path.from_string(path)
        node.keys = {float_to_key(f) for f in floats}
        node.joined = True
        nodes.append(node)
    for node in nodes:
        for other in nodes:
            if other is not node:
                cpl = node.path.common_prefix_length(other.path)
                if cpl < node.path.length:
                    node.add_route(cpl, other.node_id)
    twin = PGridNode(4, sim, net, config=config, rng=9)
    twin.path = Path.from_string("11")
    twin.keys = set(nodes[3].keys)
    twin.joined = True
    nodes[3].replicas = {4}
    twin.replicas = {3}
    nodes.append(twin)
    return sim, net, nodes


class TestDurabilityPolicyAndStore:
    def test_policy_defaults_are_valid(self):
        DurabilityPolicy().validate()
        DurabilityPolicy(enabled=False).validate()

    def test_policy_rejects_nonpositive_interval(self):
        with pytest.raises(DomainError):
            DurabilityPolicy(snapshot_interval_s=0.0).validate()

    def test_store_keeps_latest_only_and_counts(self):
        store = StateStore()
        snap = {"schema": SCHEMA, "x": 1}
        store.put(7, snap)
        store.put(7, {"schema": SCHEMA, "x": 2})
        assert store.checkpoints == 2
        assert len(store) == 1
        assert store.get(7)["x"] == 2
        store.discard(7)
        assert store.get(7) is None

    def test_store_rejects_foreign_schema(self):
        with pytest.raises(DomainError):
            StateStore().put(1, {"schema": "something/v9"})


class TestPeerSnapshotRoundTrip:
    def test_checkpoint_restore_checkpoint_is_identity(self):
        net = ideal_net()
        pid = sorted(net.peers)[0]
        peer = net.peers[pid]
        peer.erase(sorted(peer.keys)[0])  # give it a tombstone too
        before = net.checkpoint_peer(pid, now=42.0)
        # Trash the live state, then restore.
        peer.keys = type(peer.keys)([])
        peer.tombstones = type(peer.tombstones)([])
        peer.routing.levels = {}
        net.restore_peer(pid, before)
        after = net.checkpoint_peer(pid, now=42.0)
        assert before == after

    def test_snapshot_collections_are_sorted(self):
        net = ideal_net()
        snap = net.checkpoint_peer(sorted(net.peers)[0])
        assert snap["schema"] == SCHEMA and snap["kind"] == "peer"
        assert snap["keys"] == sorted(snap["keys"])
        assert snap["replicas"] == sorted(snap["replicas"])
        assert [lvl for lvl, _ in snap["routing"]] == sorted(
            lvl for lvl, _ in snap["routing"]
        )

    def test_restore_rejects_wrong_peer_and_schema(self):
        net = ideal_net()
        a, b = sorted(net.peers)[:2]
        snap = net.checkpoint_peer(a)
        with pytest.raises(DomainError):
            net.restore_peer(b, snap)
        bad = dict(snap, schema="pgrid-state/v0")
        with pytest.raises(DomainError):
            net.restore_peer(a, bad)
        wrong_kind = dict(snap, kind="node")
        with pytest.raises(DomainError):
            net.restore_peer(a, wrong_kind)


class TestNodeSnapshotRoundTrip:
    def test_snapshot_restore_snapshot_is_identity(self):
        sim, net, nodes = build_wire()
        node = nodes[3]
        key = float_to_key(0.8)
        nodes[0].issue_delete(key)
        sim.run_until(30.0)
        assert key in node.tombstones
        before = node.snapshot_state()
        node.keys = set()
        node.tombstones = set()
        node._tombstone_born = {}
        node.routing = {}
        node.restore_state(before)
        after = node.snapshot_state()
        # Liveness ages are deliberately NOT identity: restore caps
        # last_confirmed so every ref reads as due for re-confirmation.
        confirm = node.config.repair.confirm_interval_s
        assert {k: v for k, v in before.items() if k != "liveness"} == {
            k: v for k, v in after.items() if k != "liveness"
        }
        assert after["liveness"]["evicted"] == before["liveness"]["evicted"]
        for (ref_b, age_b), (ref_a, age_a) in zip(
            before["liveness"]["last_confirmed"],
            after["liveness"]["last_confirmed"],
        ):
            assert ref_a == ref_b
            assert age_a == pytest.approx(max(age_b, confirm))

    def test_restored_liveness_refs_need_confirmation(self):
        sim, net, nodes = build_wire()
        node = nodes[0]
        # A recent confirmation would normally suppress the next probe.
        node.liveness.last_confirmed[1] = sim.now
        snap = node.snapshot_state()
        node.restore_state(snap)
        assert node.liveness.needs_confirmation(1, sim.now)
        # In-flight probe state never survives a restart.
        assert not node.liveness.strikes and not node.liveness.probe_nonce

    def test_restore_clears_transient_state(self):
        sim, net, nodes = build_wire()
        node = nodes[0]
        snap = node.snapshot_state()
        node.idle_strikes = 3
        node._inflight_exchange = (99, 1)
        node.restore_state(snap)
        assert node.idle_strikes == 0
        assert node._inflight_exchange is None


class TestTombstoneClocks:
    def ttl_node(self, ttl=100.0):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01), rng=1)
        config = NodeConfig(tombstone_ttl_s=ttl)
        node = PGridNode(0, sim, net, config=config, rng=1)
        node.path = Path.from_string("0")
        node.joined = True
        return sim, node

    def test_ttl_keeps_aging_across_downtime(self):
        sim, node = self.ttl_node(ttl=100.0)
        sim.run_until(10.0)
        node._note_tombstones([5])
        snap = node.snapshot_state()
        # Restart lands before expiry: certificate survives, birth
        # rebased so only the *remaining* TTL is left.
        sim.run_until(60.0)
        node.restore_state(snap)
        assert 5 in node.tombstones
        assert node._tombstone_born[5] == pytest.approx(10.0)
        # A second restart after the original expiry: stays dead.
        snap2 = node.snapshot_state()
        sim.run_until(111.0)
        node.restore_state(snap2)
        assert 5 not in node.tombstones

    def test_regossip_does_not_refresh_ttl_clock(self):
        sim, node = self.ttl_node(ttl=100.0)
        sim.run_until(10.0)
        node._note_tombstones([5])
        sim.run_until(90.0)
        node._note_tombstones([5])  # re-gossip of the same certificate
        assert node._tombstone_born[5] == pytest.approx(10.0)
        sim.run_until(110.5)  # past 10 + ttl, before 90 + ttl
        node._prune_tombstones()
        assert 5 not in node.tombstones

    def test_exchange_regossip_does_not_refresh_replica_clock(self):
        sim, net, nodes = build_wire()
        owner, twin = nodes[3], nodes[4]
        key = float_to_key(0.8)
        nodes[0].issue_delete(key)
        sim.run_until(30.0)
        born = twin._tombstone_born[key]
        sim.run_until(200.0)
        owner._begin_exchange(4)  # anti-entropy re-ships the certificate
        sim.run_until(230.0)
        assert twin._tombstone_born[key] == pytest.approx(born)

    def test_message_net_config_wires_ttl_through(self):
        spec = scenario("uniform-baseline", n_peers=24, seed=1, duration_scale=0.1)
        runner = MessageScenarioRunner(
            spec, net_config=MessageNetConfig(tombstone_ttl_s=123.0)
        )
        runner.run()
        configs = {node.config.tombstone_ttl_s for node in runner.nodes.values()}
        assert configs == {123.0}

    def test_spec_ttl_overrides_net_config(self):
        spec = scenario("restart-storm", n_peers=24, seed=1, duration_scale=0.1)
        assert spec.tombstone_ttl_s == pytest.approx(120.0)  # 1200 * 0.1
        runner = MessageScenarioRunner(
            spec, net_config=MessageNetConfig(tombstone_ttl_s=50.0)
        )
        runner.run()
        assert {n.config.tombstone_ttl_s for n in runner.nodes.values()} == {120.0}

    def test_spec_ttl_validation(self):
        spec = scenario("uniform-baseline", n_peers=24, seed=1, duration_scale=0.1)
        from dataclasses import replace

        with pytest.raises(SimulationError):
            replace(spec, tombstone_ttl_s=0.0).validate()

    def test_runner_validates_durability_policy(self):
        spec = scenario("uniform-baseline", n_peers=24, seed=1, duration_scale=0.1)
        bad = DurabilityPolicy(snapshot_interval_s=-1.0)
        with pytest.raises(DomainError):
            MessageScenarioRunner(spec, net_config=MessageNetConfig(durability=bad))
        with pytest.raises(DomainError):
            ScenarioRunner(spec, durability=bad)


class TestOfflineTimerHygiene:
    def test_abort_inflight_voids_pending_operations_as_moot(self):
        sim, net, nodes = build_wire()
        origin = nodes[0]
        done = {"query": [], "write": [], "range": []}
        origin.on_query_done = lambda nid, qid, out: done["query"].append(out)
        origin.on_write_done = lambda nid, wid, out: done["write"].append(out)
        origin.on_range_done = lambda nid, qid, out: done["range"].append(out)
        origin.issue_query(float_to_key(0.9))
        origin.issue_insert(float_to_key(0.85))
        origin.issue_range_query(float_to_key(0.3), float_to_key(0.9))
        assert origin._queries and origin._writes and origin._ranges
        # Shutdown while everything is in flight.
        origin.abort_inflight()
        origin.set_online(False)
        assert not origin._queries and not origin._writes and not origin._ranges
        # Observers fired exactly once each, all moot: the runner's
        # bookkeeping drains instead of leaking.
        assert [o.moot for o in done["query"]] == [True]
        assert [o.moot for o in done["write"]] == [True]
        assert [o.moot for o in done["range"]] == [True]

    def test_stale_timers_do_not_burn_retries_after_warm_rejoin(self):
        sim, net, nodes = build_wire()
        origin = nodes[0]
        done = []
        origin.on_query_done = lambda nid, qid, out: done.append(out)
        origin.issue_query(float_to_key(0.9))
        snap = origin.snapshot_state()
        origin.abort_inflight()
        origin.set_online(False)
        assert len(done) == 1 and done[0].moot
        # Downtime long enough for every stale attempt timer to expire.
        sim.run_until(30.0)
        origin.restore_state(snap)
        origin.set_online(True, warm=True)
        sim.run_until(40.0)
        # The stale timers found no pending entry: no extra outcomes.
        assert len(done) == 1
        # A fresh query starts with a full retry budget and one attempt.
        origin.issue_query(float_to_key(0.9))
        sim.run_until(70.0)
        assert len(done) == 2
        fresh = done[1]
        assert fresh.success and not fresh.moot and fresh.attempts == 1

    def test_armed_lazy_timers_survive_abort_without_double_resolution(self):
        # Lazy-timer extension of the exactly-once suite: let the
        # zero-delay attempts actually go out so every pending op's
        # DeadlineTimer is armed with one outstanding heap event, then
        # abort.  The disarmed events fire into no-ops when the stale
        # deadlines pass -- exactly one (moot) outcome per op, no
        # timeout charged, and nothing ever cancelled in the heap.
        sim, net, nodes = build_wire()
        origin = nodes[0]
        done = {"query": [], "write": [], "range": []}
        origin.on_query_done = lambda nid, qid, out: done["query"].append(out)
        origin.on_write_done = lambda nid, wid, out: done["write"].append(out)
        origin.on_range_done = lambda nid, qid, out: done["range"].append(out)
        qid = origin.issue_query(float_to_key(0.9))
        wid = origin.issue_insert(float_to_key(0.85))
        rid = origin.issue_range_query(float_to_key(0.3), float_to_key(0.9))
        sim.run_until(0.001)  # attempts sent: all three timers armed
        assert origin._queries[qid].timer.armed
        assert origin._writes[wid].timer.armed
        assert origin._ranges[rid].timer.armed
        origin.abort_inflight()
        origin.set_online(False)
        # Well past every stale deadline: the fires must all no-op.
        sim.run_until(60.0)
        for kind, outcomes in done.items():
            assert len(outcomes) == 1, f"{kind} resolved {len(outcomes)} times"
            assert outcomes[0].moot and outcomes[0].timeouts == 0
        assert sim.pending_cancelled == 0

    def test_warm_rejoin_initiates_one_replica_exchange(self):
        sim, net, nodes = build_wire()
        owner = nodes[3]
        snap = owner.snapshot_state()
        owner.abort_inflight()
        owner.set_online(False)
        # The twin learns a key while the owner is down.
        nodes[4].keys.add(float_to_key(0.99))
        sim.run_until(30.0)
        owner.restore_state(snap)
        owner.set_online(True, warm=True)
        sim.run_until(60.0)
        assert float_to_key(0.99) in owner.keys  # delta reconciled


class TestRestartSpec:
    def test_validate_rejects_bad_fields(self):
        for bad in (
            RestartSpec(fraction=0.0),
            RestartSpec(fraction=1.5),
            RestartSpec(min_down_s=0.0),
            RestartSpec(min_down_s=90.0, max_down_s=30.0),
            RestartSpec(stagger_s=-1.0),
            RestartSpec(crash_fraction=1.5),
        ):
            with pytest.raises(SimulationError):
                bad.validate()

    def test_defaults_are_valid(self):
        RestartSpec().validate()

    def test_scaled_dilates_times_but_not_fractions(self):
        spec = scenario("restart-storm", n_peers=24, seed=1, duration_scale=0.5)
        restarts = [p.restarts for p in spec.phases if p.restarts is not None]
        assert len(restarts) == 1
        full = scenario("restart-storm", n_peers=24, seed=1).phases
        ref = [p.restarts for p in full if p.restarts is not None][0]
        got = restarts[0]
        assert got.min_down_s == pytest.approx(ref.min_down_s * 0.5)
        assert got.max_down_s == pytest.approx(ref.max_down_s * 0.5)
        assert got.stagger_s == pytest.approx(ref.stagger_s * 0.5)
        assert got.fraction == ref.fraction
        assert got.crash_fraction == ref.crash_fraction


class _StubPeer:
    def __init__(self, path):
        self.path = Path.from_string(path)


class _StubNet:
    def __init__(self, *paths):
        self.peers = {i: _StubPeer(p) for i, p in enumerate(paths)}


class TestRefinementTolerantTiling:
    def test_exact_tiling_passes_both_modes(self):
        net = _StubNet("00", "01", "1")
        check_partition_tiling(net)
        check_partition_tiling(net, allow_refinement=True)

    def test_parent_child_overlap_needs_refinement_mode(self):
        # Mid-refinement: one member of group "0" already specialized
        # to "00"/"01" while a straggler still sits at "0".
        net = _StubNet("0", "00", "01", "1")
        with pytest.raises(PartitionError):
            check_partition_tiling(net)
        check_partition_tiling(net, allow_refinement=True)

    def test_gap_fails_even_with_refinement(self):
        net = _StubNet("00", "1")  # "01" uncovered
        with pytest.raises(PartitionError):
            check_partition_tiling(net, allow_refinement=True)

    def test_missing_tail_fails_with_refinement(self):
        net = _StubNet("0", "10")  # "11" uncovered
        with pytest.raises(PartitionError):
            check_partition_tiling(net, allow_refinement=True)

    def test_parent_covers_straggler_children_everywhere(self):
        # The parent alone covers the space; children merely nest.
        net = _StubNet("0", "1", "11", "110")
        check_partition_tiling(net, allow_refinement=True)


SMALL = dict(n_peers=48, seed=7, duration_scale=0.25)


class TestRecoveryProperties:
    """Scenario-level crash-model properties on both backends."""

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_clean_shutdown_loses_nothing(self, backend):
        # restart-storm has crash_fraction=0: every restart is a clean
        # shutdown, so with durability on no acked write may be lost
        # and no tombstone may resurrect.
        report = run_scenario(scenario("restart-storm", **SMALL), backend=backend)
        rec = report.recovery
        assert rec is not None and rec["durability_enabled"]
        assert rec["restarts"] > 0
        assert rec["crashes"] == 0
        assert rec["clean_shutdowns"] == rec["restarts"]
        assert rec["warm_rejoins"] == rec["restarts"]
        assert rec["cold_rejoins"] == 0
        assert rec["checkpoints"] > 0
        assert rec["acked_writes_tracked"] > 0
        assert rec["lost_acked_writes"] == 0
        assert rec["tombstone_resurrections"] == 0

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_crash_model_quantifies_staleness(self, backend):
        # datacenter-power-cycle has crash_fraction=1.0: every restore
        # falls back to the last periodic checkpoint.  The audit still
        # runs and reports the damage as numbers (possibly zero at this
        # small scale) rather than silently.
        report = run_scenario(
            scenario("datacenter-power-cycle", **SMALL), backend=backend
        )
        rec = report.recovery
        assert rec is not None
        assert rec["crashes"] == rec["restarts"] > 0
        assert rec["clean_shutdowns"] == 0
        assert rec["warm_rejoins"] == rec["restarts"]
        assert rec["acked_writes_tracked"] > 0
        assert rec["lost_acked_writes"] >= 0
        assert rec["tombstone_resurrections"] >= 0

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    def test_durability_off_forces_cold_rejoins(self, backend):
        spec = scenario("restart-storm", **SMALL)
        cold = DurabilityPolicy(enabled=False)
        if backend == "message":
            runner = MessageScenarioRunner(
                spec, net_config=MessageNetConfig(durability=cold)
            )
        else:
            runner = ScenarioRunner(spec, durability=cold)
        rec = runner.run().recovery
        assert rec is not None and not rec["durability_enabled"]
        assert rec["cold_rejoins"] == rec["restarts"] > 0
        assert rec["warm_rejoins"] == 0
        assert rec["checkpoints"] == 0

    def test_warm_beats_cold_on_time_and_bytes(self):
        # The headline A/B at test scale, dataplane backend (fast):
        # warm rejoin must converge no later and spend strictly fewer
        # maintenance bytes than the cold sponsored-join baseline.
        spec = scenario("restart-storm", n_peers=128, seed=7, duration_scale=0.25)
        warm = ScenarioRunner(spec).run().recovery
        cold = ScenarioRunner(
            spec, durability=DurabilityPolicy(enabled=False)
        ).run().recovery
        assert warm["converged"]
        assert (
            warm["time_to_converged_divergence_s"]
            <= cold["time_to_converged_divergence_s"]
        )
        assert warm["recovery_maint_bytes"] < cold["recovery_maint_bytes"]

    def test_non_restart_reports_have_no_recovery_section(self):
        report = run_scenario(
            scenario("uniform-baseline", n_peers=24, seed=11, duration_scale=0.1)
        )
        assert report.recovery is None
        assert "recovery" not in report.to_dict()

    def test_structural_invariants_survive_restart_storm(self):
        from repro.scenarios.invariants import check_routing_complementarity

        runner = MessageScenarioRunner(scenario("restart-storm", **SMALL))
        runner.run()
        net = runner.as_network()
        check_routing_complementarity(net)
        check_partition_tiling(net, allow_refinement=True)

    @pytest.mark.parametrize("backend", ["dataplane", "message"])
    @pytest.mark.parametrize(
        "name", ["restart-storm", "rolling-deploy", "datacenter-power-cycle"]
    )
    def test_restart_scenarios_are_deterministic(self, name, backend):
        small = dict(n_peers=32, seed=3, duration_scale=0.1)
        a = run_scenario(scenario(name, **small), backend=backend).to_json()
        b = run_scenario(scenario(name, **small), backend=backend).to_json()
        assert a == b

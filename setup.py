"""Setuptools shim.

Kept alongside ``pyproject.toml`` so editable installs work on older
setuptools/pip stacks without the ``wheel`` package (offline
environments): ``python setup.py develop`` or ``pip install -e .``.
"""

from setuptools import setup

setup()

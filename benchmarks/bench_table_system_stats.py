"""Sec. 5.2 in-text statistics: the full-system summary table.

Paper values: load-balance deviation 0.39 (simulation 0.38 +- 0.05),
mean path length slightly below 6, ~3 query hops (half the path length),
mean replication factor 5, query success 95-100% even under churn.

Guards: Sec. 5.2's in-text system summary statistics.
"""

from repro.experiments import fig789
from repro.experiments.reporting import print_table


def test_system_summary_statistics(benchmark):
    report = benchmark.pedantic(fig789.system_report, rounds=1, iterations=1)
    print_table(
        ["statistic", "measured", "paper"],
        fig789.summary_rows(),
        title="Sec. 5.2 -- system statistics (simulated deployment)",
    )
    # Quantitative bands (loose: our substrate is a simulator, not
    # PlanetLab; see EXPERIMENTS.md for the discussion).
    assert report.deviation < 0.8
    assert 2.0 <= report.mean_path_length <= 9.0
    assert 1.0 <= report.mean_query_hops <= report.mean_path_length
    assert report.replication_factor >= 3.0
    assert report.success_rate_static >= 0.97
    assert report.success_rate_churn >= 0.85

"""Micro-benchmarks of the hot core primitives.

These use pytest-benchmark's statistical timing (many rounds) rather
than the one-shot harness runs: they guard against performance
regressions in the inner loops every experiment depends on.

Guards: the constant factors behind the paper's O(log K) lookup and
O(log K + K_range) shower range-query claims (Secs. 2.1, 2.3), and the
alpha/beta inversions every construction interaction performs
(Sec. 3.2).  The one-shot counterparts -- absolute timings tracked
across PRs -- live in ``perf_harness.py`` / ``bench_perf_suite.py``,
which emit ``BENCH_core.json`` at the repo root.
"""

import random

from repro.core.bisection import simulate_aep
from repro.core.probabilities import alpha_of_p, beta_of_p, decision_probabilities
from repro.pgrid.keyspace import float_to_key
from repro.pgrid.network import PGridNetwork


def test_micro_beta_inversion(benchmark):
    result = benchmark(lambda: beta_of_p(0.42))
    assert 0.0 < result < 1.0


def test_micro_alpha_inversion(benchmark):
    result = benchmark(lambda: alpha_of_p(0.17))
    assert 0.0 < result < 1.0


def test_micro_decision_probabilities_corrected(benchmark):
    probs = benchmark(lambda: decision_probabilities(0.2, m=10))
    assert 0.0 <= probs.alpha <= 1.0


def test_micro_aep_bisection_small(benchmark):
    counter = iter(range(10**9))

    def run():
        return simulate_aep(200, 0.4, m=10, rng=next(counter))

    out = benchmark(run)
    assert out.n0 + out.n1 == 200


def test_micro_lookup(benchmark):
    rand = random.Random(5)
    keys = [float_to_key(rand.random()) for _ in range(1000)]
    net = PGridNetwork.ideal(keys, 128, d_max=40, n_min=3, rng=1)
    query_keys = rand.sample(keys, 64)
    idx = iter(range(10**9))

    def run():
        return net.lookup(query_keys[next(idx) % 64], rng=rand)

    res = benchmark(run)
    assert res.found


def test_micro_range_query(benchmark):
    rand = random.Random(6)
    keys = [float_to_key(rand.random()) for _ in range(1000)]
    net = PGridNetwork.ideal(keys, 128, d_max=40, n_min=3, rng=2)
    lo, hi = float_to_key(0.4), float_to_key(0.6)

    def run():
        return net.range_query(lo, hi, rng=rand)

    res = benchmark(run)
    assert len(res.keys) > 0

"""Figure 6(d): theoretically derived probability functions vs heuristics.

Paper conclusion: "Even a minor change to the theoretically correct
functions degrades the quality of load balancing substantially."

Guards: Fig. 6(d) -- necessity of the theoretically derived alpha/beta.
"""

from repro._util import mean
from repro.experiments.fig6 import panel_d
from repro.experiments.reporting import print_table


def test_fig6d_theory_vs_heuristic(benchmark):
    rows = benchmark.pedantic(panel_d, kwargs={"n": 256}, rounds=1, iterations=1)
    print_table(
        ["workload", "theory", "heuristic"],
        rows,
        title="Figure 6(d) -- deviation, theoretical vs heuristic functions "
        "(n=256, n_min=5,10)",
    )
    theory = mean(row[1] for row in rows)
    heuristic = mean(row[2] for row in rows)
    assert heuristic > 1.2 * theory, (
        f"heuristic ({heuristic:.3f}) must degrade balance vs theory "
        f"({theory:.3f})"
    )

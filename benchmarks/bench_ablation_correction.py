"""Ablation: sampling-bias correction across sample sizes (extends Fig. 4).

The Eq. (9)/(10) corrections are derived for "presumably small" errors;
this sweep shows where they pay off (m >= ~5) and confirms the paper's
Fig. 6(c) observation that load balance itself tolerates tiny samples.

Guards: the Eq. (9)/(10) bias-correction claim (extends Fig. 4 / Fig. 6(c)).
"""

from repro.experiments.ablations import correction_ablation, replication_floor_ablation
from repro.experiments.reporting import print_table


def test_correction_across_sample_sizes(benchmark):
    rows = benchmark.pedantic(correction_ablation, rounds=1, iterations=1)
    print_table(
        ["m", "AEP bias", "AEP std", "COR bias", "COR std"],
        rows,
        title="Ablation -- sampling-bias correction vs sample size (p=0.4, N=1000)",
    )
    by_m = {row[0]: row for row in rows}
    # At the paper's m = 10 the correction must roughly cancel the bias.
    assert abs(by_m[10][3]) < abs(by_m[10][1])
    assert abs(by_m[25][3]) < abs(by_m[25][1])
    # Bias decreases with sample size even without correction.
    assert abs(by_m[50][1]) < abs(by_m[2][1])


def test_replication_floor(benchmark):
    rows = benchmark.pedantic(replication_floor_ablation, rounds=1, iterations=1)
    print_table(
        ["variant", "deviation", "min replicas/leaf"],
        rows,
        title="Ablation -- split policy variants on skewed data (P1.0, n=256)",
    )
    assert all(row[2] >= 1 for row in rows)

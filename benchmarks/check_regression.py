#!/usr/bin/env python
"""Perf-regression gate: fail when fresh numbers regress vs a baseline.

Compares a freshly generated ``BENCH_core.json`` (the *candidate*,
typically ``bench_perf_suite.py --quick`` output) against a committed
snapshot (the *baseline*) and exits non-zero when ``lookup_us``,
``range_us`` or ``build_s`` regressed beyond ``--tolerance`` (default
1.5x -- wide enough to absorb shared-runner noise, tight enough to
catch a lost fast path) at any overlapping overlay size.

CI usage (the ``perf-smoke`` job)::

    cp BENCH_core.json /tmp/BENCH_baseline.json   # committed numbers
    python benchmarks/bench_perf_suite.py --quick # regenerate in place
    python benchmarks/check_regression.py \\
        --baseline /tmp/BENCH_baseline.json --candidate BENCH_core.json

Only sizes present in *both* snapshots are compared (the quick suite
skips N=4096), so the committed full-suite snapshot doubles as the
baseline.  Improvements are reported but never fail the gate.  Exit
codes: 0 ok, 1 regression, 2 unusable input (no overlapping metrics --
a misconfigured gate must not pass silently).

Guards: the PR-1 data-plane speedups (sorted key stores, memoized
inversions, query fast paths) as committed in ``BENCH_core.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated metrics: per-operation query latencies and end-to-end build time.
METRICS = ("lookup_us", "range_us", "build_s")

#: Default regression tolerance (candidate/baseline ratio).
DEFAULT_TOLERANCE = 1.5


def compare(
    baseline: dict, candidate: dict, tolerance: float
) -> Tuple[List[Tuple[str, str, float, float, float]], List[str]]:
    """Compare the gated metrics; returns ``(rows, failures)``.

    Each row is ``(metric, size, baseline_value, candidate_value,
    ratio)``; ``failures`` holds one message per breached tolerance.
    """
    rows: List[Tuple[str, str, float, float, float]] = []
    failures: List[str] = []
    for metric in METRICS:
        base: Dict[str, float] = baseline.get("results", {}).get(metric, {})
        cand: Dict[str, float] = candidate.get("results", {}).get(metric, {})
        for size in sorted(set(base) & set(cand), key=int):
            base_value = float(base[size])
            cand_value = float(cand[size])
            ratio = cand_value / base_value if base_value > 0 else float("inf")
            rows.append((metric, size, base_value, cand_value, ratio))
            if ratio > tolerance:
                failures.append(
                    f"{metric} @ N={size}: {cand_value:g} vs baseline "
                    f"{base_value:g} ({ratio:.2f}x > {tolerance:g}x tolerance)"
                )
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed BENCH_core.json to compare against",
    )
    parser.add_argument(
        "--candidate", type=Path, required=True,
        help="freshly generated BENCH_core.json to check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max allowed candidate/baseline ratio (default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, ValueError) as exc:
        print(f"check_regression: cannot load snapshots: {exc}", file=sys.stderr)
        return 2

    rows, failures = compare(baseline, candidate, args.tolerance)
    if not rows:
        print(
            "check_regression: no overlapping metrics between baseline and "
            "candidate -- gate is misconfigured",
            file=sys.stderr,
        )
        return 2

    print(f"perf regression gate (tolerance {args.tolerance:g}x)")
    for metric, size, base_value, cand_value, ratio in rows:
        verdict = "FAIL" if ratio > args.tolerance else (
            "ok  " if ratio >= 1.0 else "ok ^"  # ^ = faster than baseline
        )
        print(
            f"  [{verdict}] {metric:10s} N={size:>5s}  "
            f"baseline {base_value:10.3f}  candidate {cand_value:10.3f}  "
            f"ratio {ratio:5.2f}x"
        )
    if failures:
        print("\nregressions beyond tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

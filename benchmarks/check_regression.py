#!/usr/bin/env python
"""Perf-regression gate: fail when fresh numbers regress vs a baseline.

Compares a freshly generated ``BENCH_core.json`` (the *candidate*,
typically ``bench_perf_suite.py --quick`` output) against a committed
snapshot (the *baseline*) and exits non-zero when ``lookup_us``,
``range_us`` or ``build_s`` regressed beyond ``--tolerance`` (default
1.5x -- wide enough to absorb shared-runner noise, tight enough to
catch a lost fast path) at any overlapping overlay size.

CI usage (the ``perf-smoke`` job)::

    cp BENCH_core.json /tmp/BENCH_baseline.json   # committed numbers
    python benchmarks/bench_perf_suite.py --quick # regenerate in place
    python benchmarks/check_regression.py \\
        --baseline /tmp/BENCH_baseline.json --candidate BENCH_core.json

Only sizes present in *both* snapshots are compared (the quick suite
skips N=4096), so the committed full-suite snapshot doubles as the
baseline.  Improvements are reported but never fail the gate.  Exit
codes: 0 ok, 1 regression, 2 unusable input (no overlapping metrics --
a misconfigured gate must not pass silently).

Besides the perf metrics, the gate also guards the **scenario
sections** of both execution backends (``scenarios`` /
``scenarios_message``, written by ``bench_scenarios.py``).  Per
scenario entry it compares every metric it knows the direction of,
instead of silently ignoring unknown keys:

* ``success_rate`` and ``write_success_rate`` -- an absolute drop
  beyond ``--scenario-tolerance`` (default 0.05) fails: e.g.
  ``mass-leave`` sliding back toward the unrepaired ~0.64, or the write
  path losing mutations it used to land;
* ``divergence_final`` -- an absolute *rise* beyond the same tolerance
  fails: replica staleness regressing means replica sync/anti-entropy
  stopped keeping up with the write stream;
* ``bytes_update`` -- growth beyond the ratio ``--tolerance`` fails: a
  write-path bandwidth blowup is a regression even when success holds;
* ``recovery_time_s`` / ``recovery_maint_bytes`` -- ratio growth fails:
  warm rejoin getting slower or chattier than its committed numbers;
* ``lost_acked_writes`` / ``tombstone_resurrections`` -- any rise fails;
* ``cache_hit_rate`` -- an absolute drop beyond the scenario tolerance
  fails: the serving front end losing its hits means caching stopped
  absorbing the Zipf head;
* ``stale_read_rate`` -- an absolute *rise* beyond the same tolerance
  fails: coherence (write invalidation + TTL) regressing silently;
* ``serving_p99_s`` -- ratio growth fails: the cached tail latency is
  the headline serving win and must not drift back to the uncached
  timeout band;
* ``box_recall`` -- an absolute drop beyond the scenario tolerance
  fails: the z-order box decomposition losing keys it used to find
  means multi-dimensional queries silently under-cover;
* ``ranges_per_box`` -- growth beyond the ratio ``--tolerance`` fails:
  the litmax/bigmin splitter fragmenting boxes it used to cover
  cheaply is a routing-cost regression even when recall holds.

Restart scenarios additionally get an **intra-snapshot** recovery gate
(:func:`check_recovery`, candidate only, no baseline needed): warm
rejoin must beat the inline ``recovery.cold`` baseline on
time-to-converged-divergence and recovery maintenance bytes, and a
clean-shutdown run with durability enabled must report zero lost acked
writes and zero tombstone resurrections.  Because it needs no
baseline, this gate runs in the perf-smoke quick job too.

Serving scenarios get the analogous **intra-snapshot** serving gate
(:func:`check_serving`): with caches on, serving p99 latency and the
per-peer load Gini must be strictly better than the inline
``serving.off`` baseline pass (same spec, ``CachePolicy(enabled=
False)``) recorded by ``bench_scenarios.py``, and end-to-end query
success must not drop -- a cache that serves stale garbage fast would
otherwise look like a win.

Multi-dimensional scenarios get their own **intra-snapshot** gate
(:func:`check_mdim`): the box-recall audit must stay within the
scenario tolerance of 1.0 (exactly 1.0 on maintenance-free specs like
``geo-box-serving``), and both the mean and max ranges-per-box must
respect the codec's pinned ``split_budget`` -- the litmax/bigmin
decomposition is defined to stop splitting at the budget, so a breach
means the knob stopped being wired through.

The ``scale`` section (written by ``bench_scale.py``) gets both kinds
of gate: cells matched on ``(n_peers, shards, mode)`` compare
``wall_s`` growth and ``events_per_s`` shrinkage against the committed
matrix at the ratio tolerance (:func:`compare_scale`), and two
intra-snapshot invariants hold on the candidate alone
(:func:`check_scale`) -- the sharded-kernel determinism audit's
shards=8 digest must equal the shards=1 digest, and every cell's
pending-event peak must sit under its recorded bound.  On top of
those, a one-time **throughput ratchet** (:func:`check_scale_ratchet`)
pins the events/sec floors from the snapshot committed *before* the
wire-kernel fast path landed: any candidate cell matching a pinned
``(n_peers, shards, mode)`` at the canonical scenario knobs must beat
its pre-fast-path number by >=1.5x, proving the fast-path win stays
landed.

Scenario sections are only compared when both snapshots ran the same
population and duration scale (the quick CI candidate at N=256 is
incomparable to the committed N=4096 section and is skipped with a
note; the nightly full run compares for real).

When ``$GITHUB_STEP_SUMMARY`` is set (every GitHub Actions step) -- or
``--summary PATH`` is passed -- the gate also appends a markdown
verdict table per metric per size, so a failure is readable from the
run's summary page instead of raw logs.

Guards: the PR-1 data-plane speedups (sorted key stores, memoized
inversions, query fast paths), the PR-4 message-level route-repair
success floor, the PR-5 write-path success/divergence floors, the
PR-6 persistence/recovery floors (warm-beats-cold, zero loss on clean
shutdown), the PR-7 serving-layer floors (cache-on beats cache-off
on tail latency and load spread, bounded staleness), and the PR-8
sharded-kernel floors (shard-count-invisible digests, bounded event
heaps, N=16,384/65,536 throughput), and the PR-10 multi-dimensional
floors (box recall, budget-bounded z-order decomposition), as
committed in ``BENCH_core.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated metrics: per-operation query latencies and end-to-end build time.
METRICS = ("lookup_us", "range_us", "build_s")

#: Default regression tolerance (candidate/baseline ratio).
DEFAULT_TOLERANCE = 1.5

#: Max allowed absolute drop in a scenario success rate (and rise in
#: replica divergence).
DEFAULT_SCENARIO_TOLERANCE = 0.05

#: Gated scenario sections, one per execution backend.
SCENARIO_SECTIONS = ("scenarios", "scenarios_message")


def compare(
    baseline: dict, candidate: dict, tolerance: float
) -> Tuple[List[Tuple[str, str, float, float, float]], List[str]]:
    """Compare the gated metrics; returns ``(rows, failures)``.

    Each row is ``(metric, size, baseline_value, candidate_value,
    ratio)``; ``failures`` holds one message per breached tolerance.
    """
    rows: List[Tuple[str, str, float, float, float]] = []
    failures: List[str] = []
    for metric in METRICS:
        base: Dict[str, float] = baseline.get("results", {}).get(metric, {})
        cand: Dict[str, float] = candidate.get("results", {}).get(metric, {})
        for size in sorted(set(base) & set(cand), key=int):
            base_value = float(base[size])
            cand_value = float(cand[size])
            ratio = cand_value / base_value if base_value > 0 else float("inf")
            rows.append((metric, size, base_value, cand_value, ratio))
            if ratio > tolerance:
                failures.append(
                    f"{metric} @ N={size}: {cand_value:g} vs baseline "
                    f"{base_value:g} ({ratio:.2f}x > {tolerance:g}x tolerance)"
                )
    return rows, failures


#: Gated per-scenario metrics, as ``(key, direction)``:
#: ``"drop"`` -- an absolute drop beyond the scenario tolerance fails;
#: ``"rise"`` -- an absolute rise beyond the scenario tolerance fails;
#: ``"ratio"`` -- growth beyond the perf ratio tolerance fails.
SCENARIO_METRICS = (
    ("success_rate", "drop"),
    ("write_success_rate", "drop"),
    ("divergence_final", "rise"),
    ("bytes_update", "ratio"),
    # Persistence/recovery metrics (restart scenarios only; written by
    # bench_scenarios.py from the report's ``recovery`` section).
    ("recovery_time_s", "ratio"),
    ("recovery_maint_bytes", "ratio"),
    ("lost_acked_writes", "rise"),
    ("tombstone_resurrections", "rise"),
    # Serving front-end metrics (serving scenarios only; written by
    # bench_scenarios.py from the report's ``serving`` section).
    ("cache_hit_rate", "drop"),
    ("stale_read_rate", "rise"),
    ("serving_p99_s", "ratio"),
    # Multi-dimensional box-query metrics (mdim scenarios only; written
    # by bench_scenarios.py from the report's ``mdim`` section).  Box
    # recall sliding means the z-order decomposition stopped covering
    # the boxes it claims to serve; ranges-per-box growing means the
    # litmax/bigmin splitter fragments boxes it used to cover cheaply.
    ("box_recall", "drop"),
    ("ranges_per_box", "ratio"),
)


def _metric_breach(
    direction: str, base: float, cand: float, abs_tol: float, ratio_tol: float
) -> bool:
    if direction == "drop":
        return cand < base - abs_tol
    if direction == "rise":
        return cand > base + abs_tol
    # ratio: only growth regresses (shrinking write bytes is a win).
    return base > 0 and cand / base > ratio_tol


def compare_scenarios(
    baseline: dict,
    candidate: dict,
    tolerance: float,
    section: str = "scenarios_message",
    ratio_tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[Tuple[str, str, float, float, bool]], List[str], Optional[str]]:
    """Compare one backend's scenario section metric by metric.

    Returns ``(rows, failures, skip_reason)``: ``rows`` are
    ``(scenario, metric, baseline, candidate, breached)`` for every
    comparable metric of every comparable scenario, ``failures`` one
    message per breach, and ``skip_reason`` a human-readable note when
    the sections are absent or incomparable (different population /
    duration scale), in which case the scenario gate is a no-op rather
    than an error -- the perf-smoke job's quick candidate legitimately
    cannot be compared to the committed full run.
    """
    base = baseline.get(section)
    cand = candidate.get(section)
    if not base or not cand:
        return [], [], f"no {section} section in both snapshots"
    for knob in ("n_peers", "duration_scale", "seed"):
        if base.get(knob) != cand.get(knob):
            return [], [], (
                f"scenario sections incomparable: {knob} "
                f"{base.get(knob)} vs {cand.get(knob)}"
            )
    rows: List[Tuple[str, str, float, float, bool]] = []
    failures: List[str] = []
    base_results = base.get("results", {})
    cand_results = cand.get("results", {})
    # A scenario the baseline gated but the candidate never ran is a
    # gate failure, not a silent skip -- a partial bench run must not
    # pass by omitting exactly the scenario that regressed.  (Scenarios
    # new in the candidate are fine: nothing pins them yet.)
    for name in sorted(set(base_results) - set(cand_results)):
        if any(
            base_results[name].get(metric) is not None
            for metric, _ in SCENARIO_METRICS
        ):
            failures.append(
                f"{name} present in baseline but missing from candidate "
                f"{section} results"
            )
    for name in sorted(set(base_results) & set(cand_results)):
        for metric, direction in SCENARIO_METRICS:
            base_value = base_results[name].get(metric)
            cand_value = cand_results[name].get(metric)
            if base_value is None or cand_value is None:
                continue  # metric absent (read-only scenario) pins nothing
            base_value, cand_value = float(base_value), float(cand_value)
            breached = _metric_breach(
                direction, base_value, cand_value, tolerance, ratio_tolerance
            )
            rows.append((name, metric, base_value, cand_value, breached))
            if breached:
                bound = (
                    f"ratio > {ratio_tolerance:g}x"
                    if direction == "ratio"
                    else f"{direction} > {tolerance:g}"
                )
                failures.append(
                    f"{section}/{name} {metric}: {cand_value:g} vs baseline "
                    f"{base_value:g} ({bound})"
                )
    return rows, failures, None


def check_recovery(candidate: dict) -> Tuple[List[Tuple[str, str, str]], List[str]]:
    """Intra-snapshot recovery gates on the *candidate* alone.

    Two invariants the persistence subsystem must always satisfy,
    checkable without a baseline because ``bench_scenarios.py`` records
    the durability-off cold pass inline under ``recovery.cold``:

    * **warm beats cold** -- with durability on, time-to-converged-
      divergence must not exceed the cold pass's, and recovery
      maintenance bytes must be strictly lower (the whole point of
      checkpoint restore vs a from-scratch rejoin);
    * **clean shutdowns lose nothing** -- a restart scenario with zero
      crashes and durability enabled must report zero lost acked writes
      and zero tombstone resurrections.

    Returns ``(rows, failures)``; rows are ``(section/scenario, check,
    detail, breached)`` for printing.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    failures: List[str] = []
    for section in SCENARIO_SECTIONS:
        results = (candidate.get(section) or {}).get("results", {})
        for name in sorted(results):
            entry = results[name]
            rec = entry.get("recovery")
            if not rec:
                continue
            where = f"{section}/{name}"
            cold = rec.get("cold") or {}
            warm_time = entry.get("recovery_time_s")
            cold_time = cold.get("time_to_converged_divergence_s")
            if warm_time is not None and cold_time is not None:
                ok = warm_time <= cold_time
                rows.append(
                    (where, "warm_time<=cold_time",
                     f"{warm_time:g} vs {cold_time:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: warm time-to-converged-divergence "
                        f"{warm_time:g}s exceeds cold baseline {cold_time:g}s"
                    )
            warm_bytes = entry.get("recovery_maint_bytes")
            cold_bytes = cold.get("recovery_maint_bytes")
            if warm_bytes is not None and cold_bytes is not None:
                ok = warm_bytes < cold_bytes
                rows.append(
                    (where, "warm_bytes<cold_bytes",
                     f"{warm_bytes:g} vs {cold_bytes:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: warm recovery maintenance bytes "
                        f"{warm_bytes:g} not strictly below cold baseline "
                        f"{cold_bytes:g}"
                    )
            if rec.get("durability_enabled") and not rec.get("crashes"):
                for metric in ("lost_acked_writes", "tombstone_resurrections"):
                    value = entry.get(metric, 0)
                    rows.append((where, f"{metric}==0", f"{value:g}", bool(value)))
                    if value:
                        failures.append(
                            f"{where}: {metric} must be 0 for a clean-shutdown "
                            f"run with durability enabled, got {value:g}"
                        )
    return rows, failures


def check_serving(
    candidate: dict, tolerance: float = DEFAULT_SCENARIO_TOLERANCE
) -> Tuple[List[Tuple[str, str, str, bool]], List[str]]:
    """Intra-snapshot serving gates on the *candidate* alone.

    The serving front end must *earn* its machinery, checkable without
    a baseline because ``bench_scenarios.py`` records a cache-off pass
    of the same spec inline under ``serving.off``:

    * **caches cut the tail** -- with caches on, serving p99 latency
      must be strictly below the cache-off pass's (the ISSUE's headline
      acceptance: cached hot keys answer locally instead of riding the
      wire into the timeout band);
    * **caches flatten the load** -- the per-peer load Gini with caches
      on must be strictly below cache-off: hits absorbed at the front
      end plus direct-routed misses must relieve the trie-top peers;
    * **no success regression** -- end-to-end query success with caches
      on must not drop more than ``tolerance`` below cache-off; a cache
      serving wrong answers fast must not pass the latency gate.

    Latency rows only exist on the message backend (the dataplane has
    no wire and reports no serving percentiles); the Gini and success
    rows gate both backends.  Returns ``(rows, failures)``; rows are
    ``(section/scenario, check, detail, breached)`` for printing.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    failures: List[str] = []
    for section in SCENARIO_SECTIONS:
        results = (candidate.get(section) or {}).get("results", {})
        for name in sorted(results):
            entry = results[name]
            srv = entry.get("serving")
            if not srv or not srv.get("enabled"):
                continue
            off = srv.get("off")
            if not off:
                continue
            where = f"{section}/{name}"
            p99_on = entry.get("serving_p99_s")
            p99_off = off.get("serving_p99_s")
            if p99_on is not None and p99_off is not None:
                ok = p99_on < p99_off
                rows.append(
                    (where, "p99_on<p99_off",
                     f"{p99_on:g} vs {p99_off:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: serving p99 with caches on {p99_on:g}s "
                        f"not strictly below cache-off baseline {p99_off:g}s"
                    )
            gini_on = entry.get("load_gini")
            gini_off = off.get("load_gini")
            if gini_on is not None and gini_off is not None:
                ok = gini_on < gini_off
                rows.append(
                    (where, "gini_on<gini_off",
                     f"{gini_on:g} vs {gini_off:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: per-peer load Gini with caches on "
                        f"{gini_on:g} not strictly below cache-off baseline "
                        f"{gini_off:g}"
                    )
            succ_on = entry.get("success_rate")
            succ_off = off.get("success_rate")
            if succ_on is not None and succ_off is not None:
                ok = succ_on >= succ_off - tolerance
                rows.append(
                    (where, "success_on>=off",
                     f"{succ_on:g} vs {succ_off:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: query success with caches on {succ_on:g} "
                        f"dropped more than {tolerance:g} below cache-off "
                        f"baseline {succ_off:g}"
                    )
    return rows, failures


def check_mdim(
    candidate: dict, tolerance: float = DEFAULT_SCENARIO_TOLERANCE
) -> Tuple[List[Tuple[str, str, str, bool]], List[str]]:
    """Intra-snapshot multi-dimensional gates on the *candidate* alone.

    Two invariants the z-order box-query layer must always satisfy,
    checkable without a baseline because ``bench_scenarios.py`` records
    the codec geometry (dims, split budget) inline under ``mdim``:

    * **boxes stay covered** -- the recall audit (keys the issued
      ranges were obligated to find vs keys actually found) must not
      drop more than ``tolerance`` below 1.0; on maintenance-free specs
      like ``geo-box-serving`` it is exactly 1.0, and anything below
      the floor means the decomposition under-covers or the range
      plumbing drops sub-ranges;
    * **decomposition honors its budget** -- both the mean and the max
      ranges-per-box must sit within the codec's ``split_budget``; the
      litmax/bigmin splitter is *defined* to stop splitting at the
      budget, so a breach means the budget knob stopped being wired
      through.

    Returns ``(rows, failures)``; rows are ``(section/scenario, check,
    detail, breached)`` for printing.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    failures: List[str] = []
    floor = 1.0 - tolerance
    for section in SCENARIO_SECTIONS:
        results = (candidate.get(section) or {}).get("results", {})
        for name in sorted(results):
            entry = results[name]
            md = entry.get("mdim")
            if not md or not md.get("boxes"):
                continue
            where = f"{section}/{name}"
            recall = entry.get("box_recall")
            if recall is not None:
                ok = recall >= floor
                rows.append(
                    (where, f"recall>={floor:g}", f"{recall:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: box recall {recall:g} below floor "
                        f"{floor:g} -- z-order decomposition no longer "
                        f"covers its boxes"
                    )
            budget = md.get("split_budget")
            for metric, value in (
                ("ranges_per_box", entry.get("ranges_per_box")),
                ("ranges_per_box_max", md.get("ranges_per_box_max")),
            ):
                if budget is None or value is None:
                    continue
                ok = value <= budget
                rows.append(
                    (where, f"{metric}<=budget",
                     f"{value:g} vs {budget:g}", not ok)
                )
                if not ok:
                    failures.append(
                        f"{where}: {metric} {value:g} exceeds the codec "
                        f"split budget {budget:g}"
                    )
    return rows, failures


def compare_scale(
    baseline: dict,
    candidate: dict,
    tolerance: float,
) -> Tuple[List[Tuple[str, str, float, float, float, bool]], List[str], Optional[str]]:
    """Compare the ``scale`` sections cell by cell.

    Cells are matched on ``(n_peers, shards, mode)`` -- only cells
    present in both snapshots are compared, so the committed full
    matrix doubles as the baseline for the nightly's N=16,384 row
    while the CI smoke cell (N=8192) simply has no counterpart and
    pins nothing.  Per overlapping cell:

    * ``wall_s`` growth beyond ``tolerance`` fails;
    * ``events_per_s`` dropping below ``baseline / tolerance`` fails
      (the sharded kernel's throughput is the tentpole claim).

    Returns ``(rows, failures, skip_reason)``; rows are ``(cell,
    metric, baseline, candidate, ratio, breached)``.
    """
    base = baseline.get("scale")
    cand = candidate.get("scale")
    if not base or not cand:
        return [], [], "no scale section in both snapshots"
    for knob in ("scenario", "seed", "duration_scale"):
        if base.get(knob) != cand.get(knob):
            return [], [], (
                f"scale sections incomparable: {knob} "
                f"{base.get(knob)} vs {cand.get(knob)}"
            )

    def by_cell(section: dict) -> Dict[tuple, dict]:
        return {
            (cell["n_peers"], cell["shards"], cell["mode"]): cell
            for cell in section.get("cells", [])
        }

    base_cells, cand_cells = by_cell(base), by_cell(cand)
    rows: List[Tuple[str, str, float, float, float, bool]] = []
    failures: List[str] = []
    for key in sorted(set(base_cells) & set(cand_cells)):
        n_peers, shards, mode = key
        label = f"N={n_peers}/shards={shards}"
        for metric, direction in (("wall_s", "ratio"), ("events_per_s", "floor")):
            base_value = base_cells[key].get(metric)
            cand_value = cand_cells[key].get(metric)
            if base_value is None or cand_value is None:
                continue
            base_value, cand_value = float(base_value), float(cand_value)
            if direction == "ratio":  # growth regresses
                ratio = cand_value / base_value if base_value > 0 else float("inf")
            else:  # floor: shrinkage regresses
                ratio = base_value / cand_value if cand_value > 0 else float("inf")
            breached = ratio > tolerance
            rows.append((label, metric, base_value, cand_value, ratio, breached))
            if breached:
                failures.append(
                    f"scale/{label} {metric}: {cand_value:g} vs baseline "
                    f"{base_value:g} ({ratio:.2f}x > {tolerance:g}x tolerance)"
                )
    return rows, failures, None


def check_scale(candidate: dict) -> Tuple[List[Tuple[str, str, str, bool]], List[str]]:
    """Intra-snapshot scale gates on the *candidate* alone.

    Two invariants the sharded kernel must always satisfy, checkable
    without a baseline because ``bench_scale.py`` records them inline:

    * **shards are invisible** -- the determinism audit's shards=8
      report digest must equal the shards=1 digest (the tentpole
      acceptance: the barrier kernel is an execution detail, never a
      semantic one);
    * **heaps stay bounded** -- every cell's pending-event peak must
      sit under its recorded per-peer bound (``pending_bound_ok``),
      so a wall-clock win can't smuggle in an unbounded event heap.

    Returns ``(rows, failures)``; rows are ``(cell, check, detail,
    breached)`` for printing.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    failures: List[str] = []
    scale = candidate.get("scale")
    if not scale:
        return rows, failures
    det = scale.get("determinism")
    if det:
        where = f"scale/determinism@N={det.get('n_peers')}"
        match = bool(det.get("match"))
        rows.append(
            (where, "digest_shards8==shards1",
             f"{det.get('digest_shards8', '')[:12]} vs "
             f"{det.get('digest_shards1', '')[:12]}", not match)
        )
        if not match:
            failures.append(
                f"{where}: sharded-kernel report digest differs from the "
                f"single-process digest -- shard count leaked into results"
            )
    for cell in scale.get("cells", []):
        where = f"scale/N={cell.get('n_peers')}/shards={cell.get('shards')}"
        ok = bool(cell.get("pending_bound_ok", True))
        rows.append(
            (where, "pending_peak<=bound",
             f"{cell.get('pending_peak')} vs {cell.get('pending_bound')}",
             not ok)
        )
        if not ok:
            failures.append(
                f"{where}: pending peak {cell.get('pending_peak')} exceeds "
                f"bound {cell.get('pending_bound')} -- event heap no longer "
                f"bounded"
            )
    return rows, failures


#: One-time throughput ratchet: the committed ``scale`` cells as of the
#: snapshot immediately *before* the wire-kernel fast path landed
#: (events/sec keyed on ``(n_peers, shards, mode)``).  The fast-path
#: PR's acceptance is that the regenerated matrix beats every one of
#: these by at least :data:`RATCHET_MIN_RATIO`; keeping the floors in
#: the gate stops a later "cleanup" from quietly giving the win back.
SCALE_RATCHET_BASELINE = {
    (4096, 1, "single"): 4492.8,
    (4096, 4, "workers"): 3180.2,
    (4096, 8, "workers"): 3504.3,
    (16384, 1, "single"): 2848.3,
    (16384, 4, "workers"): 2588.3,
    (16384, 8, "workers"): 2793.2,
    (65536, 8, "workers"): 1729.9,
}

#: Minimum candidate/pre-fast-path events-per-second ratio.
RATCHET_MIN_RATIO = 1.5

#: The ratchet floors were measured at these knobs; a scale section run
#: with any other scenario/seed/duration scale is incomparable to them
#: and skips the ratchet rather than mis-gating.
RATCHET_KNOBS = {
    "scenario": "uniform-baseline",
    "seed": 20050830,
    "duration_scale": 0.05,
}


def check_scale_ratchet(candidate: dict) -> Tuple[List[Tuple[str, str, str, bool]], List[str]]:
    """Intra-snapshot throughput ratchet on the *candidate* alone.

    Every candidate cell with a counterpart in
    :data:`SCALE_RATCHET_BASELINE` must report ``events_per_s`` at
    least :data:`RATCHET_MIN_RATIO` times the pre-fast-path committed
    number.  Unlike :func:`compare_scale` this needs no baseline
    snapshot -- the floor is pinned in the gate itself -- so it also
    guards the *committed* snapshot whenever a CI job feeds it back
    through as the candidate.  Cells without a pinned counterpart (the
    CI smoke cell at N=8192) and sections run at non-canonical knobs
    pin nothing.

    Returns ``(rows, failures)``; rows are ``(cell, check, detail,
    breached)``, same shape as :func:`check_scale` for printing.
    """
    rows: List[Tuple[str, str, str, bool]] = []
    failures: List[str] = []
    scale = candidate.get("scale")
    if not scale:
        return rows, failures
    if any(scale.get(knob) != value for knob, value in RATCHET_KNOBS.items()):
        return rows, failures
    for cell in scale.get("cells", []):
        key = (cell.get("n_peers"), cell.get("shards"), cell.get("mode"))
        floor = SCALE_RATCHET_BASELINE.get(key)
        eps = cell.get("events_per_s")
        if floor is None or eps is None:
            continue
        eps = float(eps)
        ratio = eps / floor
        ok = ratio >= RATCHET_MIN_RATIO
        where = f"scale/N={key[0]}/shards={key[1]}"
        rows.append(
            (where, f"ev/s>={RATCHET_MIN_RATIO:g}x pre-fast-path",
             f"{eps:g} vs {floor:g} ({ratio:.2f}x)", not ok)
        )
        if not ok:
            failures.append(
                f"{where}: events/sec {eps:g} is only {ratio:.2f}x the "
                f"pre-fast-path floor {floor:g} (ratchet requires "
                f">={RATCHET_MIN_RATIO:g}x)"
            )
    return rows, failures


def build_step_summary(
    perf_rows: List[Tuple[str, str, float, float, float]],
    tolerance: float,
    scenario_results: Dict[str, tuple],
    scenario_tolerance: float,
    failures: List[str],
    recovery_rows: Optional[List[Tuple[str, str, str, bool]]] = None,
    serving_rows: Optional[List[Tuple[str, str, str, bool]]] = None,
    mdim_rows: Optional[List[Tuple[str, str, str, bool]]] = None,
    scale_rows: Optional[List[Tuple[str, str, float, float, float, bool]]] = None,
    scale_skip: Optional[str] = None,
    scale_intra_rows: Optional[List[Tuple[str, str, str, bool]]] = None,
) -> str:
    """The gate verdicts as a GitHub-flavored markdown fragment.

    One table per gate: perf metrics (per size, old vs new vs ratio) and
    each backend's scenario section (per scenario per metric).  Appended
    to ``$GITHUB_STEP_SUMMARY`` so a gate failure is readable from the
    Actions summary page instead of raw logs.
    """
    lines = [
        "## Regression gates" + (" — ❌ FAIL" if failures else " — ✅ pass"),
        "",
        f"### Perf (tolerance {tolerance:g}x)",
        "",
        "| metric | N | baseline | candidate | ratio | verdict |",
        "| --- | ---: | ---: | ---: | ---: | :---: |",
    ]
    for metric, size, base_value, cand_value, ratio in perf_rows:
        verdict = "❌ fail" if ratio > tolerance else (
            "✅ ok" if ratio >= 1.0 else "✅ faster"
        )
        lines.append(
            f"| {metric} | {size} | {base_value:.3f} | {cand_value:.3f} "
            f"| {ratio:.2f}x | {verdict} |"
        )
    for section, (rows, skip) in scenario_results.items():
        lines += ["", f"### Scenarios — `{section}` "
                      f"(tolerance ±{scenario_tolerance:g} abs, {tolerance:g}x bytes)", ""]
        if skip is not None:
            lines.append(f"_skipped: {skip}_")
            continue
        lines += [
            "| scenario | metric | baseline | candidate | verdict |",
            "| --- | --- | ---: | ---: | :---: |",
        ]
        for name, metric, base_value, cand_value, breached in rows:
            verdict = "❌ fail" if breached else "✅ ok"
            lines.append(
                f"| {name} | {metric} | {base_value:g} | {cand_value:g} "
                f"| {verdict} |"
            )
    if recovery_rows:
        lines += [
            "",
            "### Recovery (intra-snapshot: warm vs cold, clean-shutdown audit)",
            "",
            "| scenario | check | values | verdict |",
            "| --- | --- | ---: | :---: |",
        ]
        for where, check, detail, breached in recovery_rows:
            verdict = "❌ fail" if breached else "✅ ok"
            lines.append(f"| {where} | `{check}` | {detail} | {verdict} |")
    if serving_rows:
        lines += [
            "",
            "### Serving (intra-snapshot: caches on vs off)",
            "",
            "| scenario | check | values | verdict |",
            "| --- | --- | ---: | :---: |",
        ]
        for where, check, detail, breached in serving_rows:
            verdict = "❌ fail" if breached else "✅ ok"
            lines.append(f"| {where} | `{check}` | {detail} | {verdict} |")
    if mdim_rows:
        lines += [
            "",
            "### Mdim (intra-snapshot: box recall floor, split budget)",
            "",
            "| scenario | check | values | verdict |",
            "| --- | --- | ---: | :---: |",
        ]
        for where, check, detail, breached in mdim_rows:
            verdict = "❌ fail" if breached else "✅ ok"
            lines.append(f"| {where} | `{check}` | {detail} | {verdict} |")
    if scale_rows or scale_skip or scale_intra_rows:
        lines += ["", f"### Scale (sharded kernel, tolerance {tolerance:g}x)", ""]
        if scale_skip is not None:
            lines.append(f"_cell comparison skipped: {scale_skip}_")
        if scale_rows:
            lines += [
                "| cell | metric | baseline | candidate | ratio | verdict |",
                "| --- | --- | ---: | ---: | ---: | :---: |",
            ]
            for cell, metric, base_value, cand_value, ratio, breached in scale_rows:
                verdict = "❌ fail" if breached else (
                    "✅ ok" if ratio >= 1.0 else "✅ faster"
                )
                lines.append(
                    f"| {cell} | {metric} | {base_value:g} | {cand_value:g} "
                    f"| {ratio:.2f}x | {verdict} |"
                )
        if scale_intra_rows:
            lines += [
                "",
                "| cell | check | values | verdict |",
                "| --- | --- | ---: | :---: |",
            ]
            for where, check, detail, breached in scale_intra_rows:
                verdict = "❌ fail" if breached else "✅ ok"
                lines.append(f"| {where} | `{check}` | {detail} | {verdict} |")
    if failures:
        lines += ["", "**Regressions beyond tolerance:**", ""]
        lines += [f"- {failure}" for failure in failures]
    return "\n".join(lines) + "\n"


def write_step_summary(markdown: str, path: Optional[str]) -> None:
    """Append ``markdown`` to the step-summary file, if one is known."""
    if not path:
        return
    try:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(markdown)
    except OSError as exc:  # never fail the gate over a summary file
        print(f"check_regression: cannot write summary: {exc}", file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed BENCH_core.json to compare against",
    )
    parser.add_argument(
        "--candidate", type=Path, required=True,
        help="freshly generated BENCH_core.json to check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max allowed candidate/baseline ratio (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--scenario-tolerance", type=float, default=DEFAULT_SCENARIO_TOLERANCE,
        help="max allowed absolute drop in scenario success rates / rise "
        f"in replica divergence (default {DEFAULT_SCENARIO_TOLERANCE})",
    )
    parser.add_argument(
        "--summary", default=None,
        help="markdown summary file to append the verdict tables to "
        "(default: $GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, ValueError) as exc:
        print(f"check_regression: cannot load snapshots: {exc}", file=sys.stderr)
        return 2

    rows, failures = compare(baseline, candidate, args.tolerance)
    if not rows:
        print(
            "check_regression: no overlapping metrics between baseline and "
            "candidate -- gate is misconfigured",
            file=sys.stderr,
        )
        return 2

    print(f"perf regression gate (tolerance {args.tolerance:g}x)")
    for metric, size, base_value, cand_value, ratio in rows:
        verdict = "FAIL" if ratio > args.tolerance else (
            "ok  " if ratio >= 1.0 else "ok ^"  # ^ = faster than baseline
        )
        print(
            f"  [{verdict}] {metric:10s} N={size:>5s}  "
            f"baseline {base_value:10.3f}  candidate {cand_value:10.3f}  "
            f"ratio {ratio:5.2f}x"
        )

    scenario_results: Dict[str, tuple] = {}
    for section in SCENARIO_SECTIONS:
        scen_rows, scen_failures, skip = compare_scenarios(
            baseline, candidate, args.scenario_tolerance, section, args.tolerance
        )
        scenario_results[section] = (scen_rows, skip)
        if skip is not None:
            print(f"scenario gate [{section}]: skipped ({skip})")
        else:
            print(
                f"scenario gate [{section}] "
                f"(tolerance ±{args.scenario_tolerance:g} abs, "
                f"{args.tolerance:g}x bytes)"
            )
            for name, metric, base_value, cand_value, breached in scen_rows:
                verdict = "FAIL" if breached else "ok  "
                print(
                    f"  [{verdict}] {name:28s} {metric:18s}  "
                    f"baseline {base_value:12.4f}  candidate {cand_value:12.4f}"
                )
        failures += scen_failures

    recovery_rows, recovery_failures = check_recovery(candidate)
    if recovery_rows:
        print("recovery gate (warm vs cold, clean-shutdown audit)")
        for where, check, detail, breached in recovery_rows:
            verdict = "FAIL" if breached else "ok  "
            print(f"  [{verdict}] {where:40s} {check:26s}  {detail}")
    failures += recovery_failures

    serving_rows, serving_failures = check_serving(
        candidate, args.scenario_tolerance
    )
    if serving_rows:
        print("serving gate (caches on vs inline cache-off baseline)")
        for where, check, detail, breached in serving_rows:
            verdict = "FAIL" if breached else "ok  "
            print(f"  [{verdict}] {where:40s} {check:26s}  {detail}")
    failures += serving_failures

    mdim_rows, mdim_failures = check_mdim(candidate, args.scenario_tolerance)
    if mdim_rows:
        print("mdim gate (box recall floor, ranges-per-box vs split budget)")
        for where, check, detail, breached in mdim_rows:
            verdict = "FAIL" if breached else "ok  "
            print(f"  [{verdict}] {where:40s} {check:26s}  {detail}")
    failures += mdim_failures

    scale_rows, scale_failures, scale_skip = compare_scale(
        baseline, candidate, args.tolerance
    )
    if scale_skip is not None:
        print(f"scale gate: cell comparison skipped ({scale_skip})")
    elif scale_rows:
        print(f"scale gate (tolerance {args.tolerance:g}x)")
        for cell, metric, base_value, cand_value, ratio, breached in scale_rows:
            verdict = "FAIL" if breached else (
                "ok  " if ratio >= 1.0 else "ok ^"
            )
            print(
                f"  [{verdict}] {cell:24s} {metric:14s}  "
                f"baseline {base_value:10.1f}  candidate {cand_value:10.1f}  "
                f"ratio {ratio:5.2f}x"
            )
    failures += scale_failures

    scale_intra_rows, scale_intra_failures = check_scale(candidate)
    if scale_intra_rows:
        print("scale gate (intra-snapshot: digest equality, pending bounds)")
        for where, check, detail, breached in scale_intra_rows:
            verdict = "FAIL" if breached else "ok  "
            print(f"  [{verdict}] {where:40s} {check:26s}  {detail}")
    failures += scale_intra_failures

    ratchet_rows, ratchet_failures = check_scale_ratchet(candidate)
    if ratchet_rows:
        print(
            f"scale ratchet (events/sec >= {RATCHET_MIN_RATIO:g}x the "
            f"pre-fast-path committed cells)"
        )
        for where, check, detail, breached in ratchet_rows:
            verdict = "FAIL" if breached else "ok  "
            print(f"  [{verdict}] {where:40s} {check:26s}  {detail}")
    failures += ratchet_failures

    write_step_summary(
        build_step_summary(
            rows, args.tolerance, scenario_results, args.scenario_tolerance,
            failures, recovery_rows, serving_rows, mdim_rows,
            scale_rows, scale_skip, scale_intra_rows + ratchet_rows,
        ),
        args.summary or os.environ.get("GITHUB_STEP_SUMMARY"),
    )

    if failures:
        print("\nregressions beyond tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Perf-regression gate: fail when fresh numbers regress vs a baseline.

Compares a freshly generated ``BENCH_core.json`` (the *candidate*,
typically ``bench_perf_suite.py --quick`` output) against a committed
snapshot (the *baseline*) and exits non-zero when ``lookup_us``,
``range_us`` or ``build_s`` regressed beyond ``--tolerance`` (default
1.5x -- wide enough to absorb shared-runner noise, tight enough to
catch a lost fast path) at any overlapping overlay size.

CI usage (the ``perf-smoke`` job)::

    cp BENCH_core.json /tmp/BENCH_baseline.json   # committed numbers
    python benchmarks/bench_perf_suite.py --quick # regenerate in place
    python benchmarks/check_regression.py \\
        --baseline /tmp/BENCH_baseline.json --candidate BENCH_core.json

Only sizes present in *both* snapshots are compared (the quick suite
skips N=4096), so the committed full-suite snapshot doubles as the
baseline.  Improvements are reported but never fail the gate.  Exit
codes: 0 ok, 1 regression, 2 unusable input (no overlapping metrics --
a misconfigured gate must not pass silently).

Besides the perf metrics, the gate also guards the **message-backend
scenario success rates** (the ``scenarios_message`` section written by
``bench_scenarios.py --backend message|both``): a scenario whose
``success_rate`` drops more than ``--scenario-tolerance`` (default
0.05, absolute) below the committed snapshot fails the gate -- e.g.
``mass-leave`` sliding back toward the unrepaired ~0.64 would be caught
even if raw perf is fine.  Scenario sections are only compared when
both snapshots ran the same population and duration scale (the quick CI
candidate at N=256 is incomparable to the committed N=4096 section and
is skipped with a note; the nightly full run compares for real).

Guards: the PR-1 data-plane speedups (sorted key stores, memoized
inversions, query fast paths) and the PR-4 message-level route-repair
success floor, as committed in ``BENCH_core.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Gated metrics: per-operation query latencies and end-to-end build time.
METRICS = ("lookup_us", "range_us", "build_s")

#: Default regression tolerance (candidate/baseline ratio).
DEFAULT_TOLERANCE = 1.5

#: Max allowed absolute drop in a message-backend scenario success rate.
DEFAULT_SCENARIO_TOLERANCE = 0.05

#: Snapshot section holding the message-backend scenario results.
SCENARIO_SECTION = "scenarios_message"


def compare(
    baseline: dict, candidate: dict, tolerance: float
) -> Tuple[List[Tuple[str, str, float, float, float]], List[str]]:
    """Compare the gated metrics; returns ``(rows, failures)``.

    Each row is ``(metric, size, baseline_value, candidate_value,
    ratio)``; ``failures`` holds one message per breached tolerance.
    """
    rows: List[Tuple[str, str, float, float, float]] = []
    failures: List[str] = []
    for metric in METRICS:
        base: Dict[str, float] = baseline.get("results", {}).get(metric, {})
        cand: Dict[str, float] = candidate.get("results", {}).get(metric, {})
        for size in sorted(set(base) & set(cand), key=int):
            base_value = float(base[size])
            cand_value = float(cand[size])
            ratio = cand_value / base_value if base_value > 0 else float("inf")
            rows.append((metric, size, base_value, cand_value, ratio))
            if ratio > tolerance:
                failures.append(
                    f"{metric} @ N={size}: {cand_value:g} vs baseline "
                    f"{base_value:g} ({ratio:.2f}x > {tolerance:g}x tolerance)"
                )
    return rows, failures


def compare_scenarios(
    baseline: dict, candidate: dict, tolerance: float
) -> Tuple[List[Tuple[str, float, float]], List[str], Optional[str]]:
    """Compare message-backend scenario success rates.

    Returns ``(rows, failures, skip_reason)``: ``rows`` are
    ``(scenario, baseline_rate, candidate_rate)`` for every comparable
    scenario, ``failures`` one message per breach, and ``skip_reason``
    a human-readable note when the sections are absent or incomparable
    (different population / duration scale), in which case the scenario
    gate is a no-op rather than an error -- the perf-smoke job's quick
    candidate legitimately cannot be compared to the committed full run.
    """
    base = baseline.get(SCENARIO_SECTION)
    cand = candidate.get(SCENARIO_SECTION)
    if not base or not cand:
        return [], [], "no scenarios_message section in both snapshots"
    for knob in ("n_peers", "duration_scale", "seed"):
        if base.get(knob) != cand.get(knob):
            return [], [], (
                f"scenario sections incomparable: {knob} "
                f"{base.get(knob)} vs {cand.get(knob)}"
            )
    rows: List[Tuple[str, float, float]] = []
    failures: List[str] = []
    base_results = base.get("results", {})
    cand_results = cand.get("results", {})
    # A scenario the baseline gated but the candidate never ran is a
    # gate failure, not a silent skip -- a partial bench run must not
    # pass by omitting exactly the scenario that regressed.  (Scenarios
    # new in the candidate are fine: nothing pins them yet.)
    for name in sorted(set(base_results) - set(cand_results)):
        if base_results[name].get("success_rate") is not None:
            failures.append(
                f"{name} present in baseline but missing from candidate "
                "scenarios_message results"
            )
    for name in sorted(set(base_results) & set(cand_results)):
        base_rate = base_results[name].get("success_rate")
        cand_rate = cand_results[name].get("success_rate")
        if base_rate is None or cand_rate is None:
            continue  # a run without (point) queries pins nothing
        rows.append((name, float(base_rate), float(cand_rate)))
        if float(cand_rate) < float(base_rate) - tolerance:
            failures.append(
                f"{name} success_rate: {cand_rate:.4f} vs baseline "
                f"{base_rate:.4f} (drop > {tolerance:g})"
            )
    return rows, failures, None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, required=True,
        help="committed BENCH_core.json to compare against",
    )
    parser.add_argument(
        "--candidate", type=Path, required=True,
        help="freshly generated BENCH_core.json to check",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=f"max allowed candidate/baseline ratio (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--scenario-tolerance", type=float, default=DEFAULT_SCENARIO_TOLERANCE,
        help="max allowed absolute drop in message-backend scenario "
        f"success rates (default {DEFAULT_SCENARIO_TOLERANCE})",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        candidate = json.loads(args.candidate.read_text())
    except (OSError, ValueError) as exc:
        print(f"check_regression: cannot load snapshots: {exc}", file=sys.stderr)
        return 2

    rows, failures = compare(baseline, candidate, args.tolerance)
    if not rows:
        print(
            "check_regression: no overlapping metrics between baseline and "
            "candidate -- gate is misconfigured",
            file=sys.stderr,
        )
        return 2

    print(f"perf regression gate (tolerance {args.tolerance:g}x)")
    for metric, size, base_value, cand_value, ratio in rows:
        verdict = "FAIL" if ratio > args.tolerance else (
            "ok  " if ratio >= 1.0 else "ok ^"  # ^ = faster than baseline
        )
        print(
            f"  [{verdict}] {metric:10s} N={size:>5s}  "
            f"baseline {base_value:10.3f}  candidate {cand_value:10.3f}  "
            f"ratio {ratio:5.2f}x"
        )

    scen_rows, scen_failures, skip = compare_scenarios(
        baseline, candidate, args.scenario_tolerance
    )
    if skip is not None:
        print(f"scenario success gate: skipped ({skip})")
    else:
        print(
            f"scenario success gate (message backend, "
            f"tolerance -{args.scenario_tolerance:g})"
        )
        for name, base_rate, cand_rate in scen_rows:
            bad = cand_rate < base_rate - args.scenario_tolerance
            verdict = "FAIL" if bad else (
                "ok  " if cand_rate <= base_rate else "ok ^"
            )
            print(
                f"  [{verdict}] {name:18s}  baseline {base_rate:6.4f}  "
                f"candidate {cand_rate:6.4f}"
            )
    failures += scen_failures

    if failures:
        print("\nregressions beyond tolerance:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

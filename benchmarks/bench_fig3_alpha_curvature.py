"""Figure 3: numerical solution for alpha''(p) over the alpha-regime.

Guards: Fig. 3 -- the alpha''(p) curvature curve motivating the corrections.
"""

from repro.experiments import fig3
from repro.experiments.reporting import print_table


def test_fig3_alpha_curvature(benchmark):
    curve = benchmark.pedantic(fig3.alpha_curvature_curve, rounds=1, iterations=1)
    print_table(
        ["p", "alpha(p)", "alpha''(p)"],
        curve,
        title="Figure 3 -- curvature of the balanced-split probability",
    )
    # Shape assertions: positive curvature, rising steeply toward the
    # regime boundary p* = 1 - ln 2.
    values = [c for _, _, c in curve]
    assert all(v > 0 for v in values)
    assert values[-1] > 3 * values[0]

"""Figure 6(b): load-balance deviation vs required replication n_min.

Paper shape: roughly unaffected for mildly skewed distributions, some
degradation for the strongly skewed ones at high n_min (fewer, larger
partitions magnify each misplaced peer).

Guards: Fig. 6(b) -- deviation vs the n_min replication floor.
"""

from repro.experiments.fig6 import panel_b
from repro.experiments.reporting import print_table

N_MINS = (5, 10, 15, 20, 25)


def test_fig6b_deviation_vs_n_min(benchmark):
    rows = benchmark.pedantic(
        panel_b, kwargs={"n": 256, "n_mins": N_MINS}, rounds=1, iterations=1
    )
    print_table(
        ["distribution", *(f"n_min={m}" for m in N_MINS)],
        rows,
        title="Figure 6(b) -- deviation for various replication factors (n=256)",
    )
    for row in rows:
        devs = row[1:]
        assert all(d < 1.6 for d in devs)
    uniform = dict((row[0], row[1:]) for row in rows)["U"]
    assert max(uniform) - min(uniform) < 0.8

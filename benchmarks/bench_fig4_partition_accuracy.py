"""Figure 4: mean deviation of the side-0 count from N*p, five models.

Paper shape: SAM and AEP drift systematically (sampling bias), COR
removes the drift almost completely, MVA and AUT stay near zero.

Guards: Fig. 4 -- partition-accuracy drift of SAM/AEP vs COR/MVA/AUT.
"""

from repro._util import mean
from repro.experiments.fig45 import MODELS, run_sweep
from repro.experiments.reporting import print_table


def test_fig4_partition_accuracy(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        ["p", *MODELS],
        sweep.fig4_rows(),
        title=f"Figure 4 -- mean(n0 - N p), N={sweep.n}, m={sweep.m}, "
        f"{sweep.reps} repetitions",
    )
    bias = {name: mean(abs(v) for v in sweep.deviation[name]) for name in MODELS}
    # The headline claims of Sec. 3.3:
    assert bias["SAM"] > 2 * bias["COR"], "correction must remove the drift"
    assert bias["AEP"] > bias["COR"]
    assert bias["MVA"] < 2.0, "exact-p mean-value model is unbiased"

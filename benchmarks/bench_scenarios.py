#!/usr/bin/env python
"""Run the named scenario library and record results in ``BENCH_core.json``.

Executes every scenario registered in :mod:`repro.scenarios.library`
(uniform-baseline, pareto-hotspot, flash-crowd, mass-join, mass-leave,
paper-sec51-churn, regional-outage, correlated-churn, the write
workloads read-write-balanced, write-hotspot-adversarial and
asymmetric-partition-writes, plus the persistence/restart scenarios
restart-storm, rolling-deploy and datacenter-power-cycle -- the latter
run twice, once with durability on and once as the cold-rejoin
baseline, recorded inline under ``recovery.cold``, plus the
serving-layer scenarios zipf-serving and cache-coherence-storm --
likewise run twice, once with caches on and once with
``CachePolicy(enabled=False)``, recorded inline under
``serving.off`` -- plus the multi-dimensional scenarios
geo-box-serving and correlated-hotspot-2d, whose entries carry the
box-recall audit and z-order decomposition stats under ``mdim``) on
one or both execution backends and
merges the results into the repo's perf snapshot, so the stress
trajectory travels with the perf trajectory:

* ``--backend dataplane`` (default) -> the ``scenarios`` section:
  synchronous data-plane queries, nominal byte model.
* ``--backend message`` -> the ``scenarios_message`` section: the same
  specs over message-passing nodes with latency/loss; entries carry the
  wire-level extras (latency percentiles, timeouts/retries, drops).
* ``--backend both`` -> both sections in one run.

The Sec. 5.1 churn entry additionally carries the query success rate
and bandwidth timelines (per report bin), mirroring the paper's
Figs. 7-9 churn window.

Sections are *merged* into the existing snapshot -- running this before
or after ``bench_perf_suite.py`` yields the same file (both sides
preserve each other's sections).

Usage::

    python benchmarks/bench_scenarios.py            # full: N=4096
    python benchmarks/bench_scenarios.py --quick    # CI smoke: N=256, 4x compressed
    python benchmarks/bench_scenarios.py --backend both --n 1024 --scale 0.5
    python benchmarks/bench_scenarios.py --output /tmp/bench.json

Guards: query success under churn/membership waves, message/bandwidth
totals and per-peer load imbalance at the ROADMAP's N=4096 scale point;
plus wire-level latency/timeout behavior on the message backend;
regressions surface as a diff of the committed numbers.  Determinism of
the underlying reports is enforced separately by
``tests/test_scenario_determinism.py`` and
``tests/test_message_scenarios.py``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.scenarios import (  # noqa: E402
    SCENARIOS,
    DurabilityPolicy,
    MessageNetConfig,
    runner_for,
    scenario,
)

#: Default location of the shared perf snapshot.
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: The ROADMAP scale point (full mode) and the CI smoke population.
FULL_N = 4096
QUICK_N = 256

#: Snapshot section per backend.
SECTION_KEYS = {"dataplane": "scenarios", "message": "scenarios_message"}


def _cold_kwargs(backend: str) -> dict:
    """Runner kwargs for the durability-off (cold-rejoin) baseline pass."""
    cold = DurabilityPolicy(enabled=False)
    if backend == "message":
        return {"net_config": MessageNetConfig(durability=cold)}
    return {"durability": cold}


def run_all(n_peers: int, *, seed: int, duration_scale: float, backend: str) -> dict:
    """Execute every library scenario on ``backend``; returns the payload."""
    runner_cls = runner_for(backend)
    results = {}
    for name in sorted(SCENARIOS):
        spec = scenario(name, n_peers=n_peers, seed=seed, duration_scale=duration_scale)
        t0 = time.perf_counter()
        report = runner_cls(spec).run()
        wall = time.perf_counter() - t0
        totals = report.totals
        entry = {
            "wall_s": round(wall, 3),
            "sim_minutes": round(report.duration_s / 60.0, 3),
            "n_peers_end": report.n_peers_end,
            "queries": totals["queries"],
            "success_rate": totals["success_rate"],
            "mean_hops": totals["mean_hops"],
            "messages": totals["messages"],
            "bytes_query": totals["bytes_query"],
            "bytes_maintenance": totals["bytes_maintenance"],
            "load_cv": report.load["cv"],
            "load_max_over_mean": report.load["max_over_mean"],
            "churn_transitions": totals["churn_transitions"],
            "joins": totals["joins"],
            "leaves": totals["leaves"],
            "final_partition_availability": totals["final_partition_availability"],
            "final_coverage": totals["final_coverage"],
        }
        if report.writes is not None:
            # Write-path metrics (gated by check_regression.py alongside
            # success_rate): mutation throughput, write success, the
            # update side of the Fig. 8 bandwidth split, and replica
            # divergence at scenario end.
            w = report.writes
            entry["writes"] = w["writes"]
            entry["write_success_rate"] = w["success_rate"]
            entry["bytes_update"] = w["bytes_update"]
            entry["update_Bps_mean"] = round(
                w["bytes_update"] / report.duration_s, 3
            )
            entry["divergence_final"] = w["divergence"]["mean"]
            entry["stale_replicas_final"] = w["divergence"]["stale_replicas"]
        if report.recovery is not None:
            # Persistence & recovery metrics (gated by
            # check_regression.py): the warm (durability-on) run is the
            # headline entry; a second durability-off pass of the same
            # spec records the cold sponsored-join baseline inline, so
            # the snapshot itself proves warm rejoin beats cold.
            rec = report.recovery
            entry["recovery_time_s"] = rec["time_to_converged_divergence_s"]
            entry["recovery_maint_bytes"] = rec["recovery_maint_bytes"]
            entry["lost_acked_writes"] = rec["lost_acked_writes"]
            entry["tombstone_resurrections"] = rec["tombstone_resurrections"]
            t0 = time.perf_counter()
            cold_report = runner_cls(spec, **_cold_kwargs(backend)).run()
            cold_wall = time.perf_counter() - t0
            cold = cold_report.recovery
            entry["recovery"] = {
                "durability_enabled": rec["durability_enabled"],
                "snapshot_interval_s": rec["snapshot_interval_s"],
                "restarts": rec["restarts"],
                "clean_shutdowns": rec["clean_shutdowns"],
                "crashes": rec["crashes"],
                "warm_rejoins": rec["warm_rejoins"],
                "cold_rejoins": rec["cold_rejoins"],
                "checkpoints": rec["checkpoints"],
                "converged": rec["converged"],
                "acked_writes_tracked": rec["acked_writes_tracked"],
                "cold": {
                    "wall_s": round(cold_wall, 3),
                    "cold_rejoins": cold["cold_rejoins"],
                    "converged": cold["converged"],
                    "time_to_converged_divergence_s":
                        cold["time_to_converged_divergence_s"],
                    "recovery_maint_bytes": cold["recovery_maint_bytes"],
                    "lost_acked_writes": cold["lost_acked_writes"],
                    "tombstone_resurrections": cold["tombstone_resurrections"],
                },
            }
        if report.serving is not None:
            # Query-serving front-end metrics (gated by
            # check_regression.py): cache effectiveness, coherence cost
            # (measured stale reads against the authoritative key view)
            # and per-peer load spread.  A second pass of the same spec
            # with ``CachePolicy(enabled=False)`` records the cache-off
            # baseline inline under ``serving.off``, so the snapshot
            # itself proves the caches improve tail latency and load
            # balance rather than merely adding machinery.
            srv = report.serving
            entry["cache_hit_rate"] = srv["cache_hit_rate"]
            entry["stale_read_rate"] = srv["stale_read_rate"]
            entry["serving_p99_s"] = srv["latency_s"].get("p99")
            entry["load_gini"] = srv["load_gini"]
            off_spec = dataclasses.replace(
                spec, cache=dataclasses.replace(spec.cache, enabled=False)
            )
            t0 = time.perf_counter()
            off_report = runner_cls(off_spec).run()
            off_wall = time.perf_counter() - t0
            off = off_report.serving
            entry["serving"] = {
                "enabled": srv["enabled"],
                "policy": srv["policy"],
                "cache_hits": srv["cache_hits"],
                "cache_misses": srv["cache_misses"],
                "audited_hits": srv["audited_hits"],
                "stale_reads": srv["stale_reads"],
                "dedup_joined": srv["dedup_joined"],
                "invalidations": srv["invalidations"],
                "route_uses": srv["route_uses"],
                "route_invalidations": srv["route_invalidations"],
                "grants": srv["grants"],
                "revokes": srv["revokes"],
                "grant_hits": srv["grant_hits"],
                "helpers_final": srv["helpers_final"],
                "latency_s": srv["latency_s"],
                "off": {
                    "wall_s": round(off_wall, 3),
                    "success_rate": off_report.totals["success_rate"],
                    "serving_p99_s": off["latency_s"].get("p99"),
                    "load_gini": off["load_gini"],
                    "latency_s": off["latency_s"],
                },
            }
        if report.mdim is not None:
            # Multi-dimensional box-query metrics (gated by
            # check_regression.py): recall against the brute-force
            # oracle and z-order decomposition efficiency.
            md = report.mdim
            entry["box_recall"] = md["box_recall"]
            entry["ranges_per_box"] = md["ranges_per_box_mean"]
            entry["mdim"] = {
                "dims": md["dims"],
                "bits_per_dim": md["bits_per_dim"],
                "split_budget": md["split_budget"],
                "boxes": md["boxes"],
                "box_success_rate": md["box_success_rate"],
                "ranges_total": md["ranges_total"],
                "ranges_per_box_max": md["ranges_per_box_max"],
                "recall_expected": md["recall_expected"],
                "recall_found": md["recall_found"],
                "selectivity_per_dim": md["selectivity_per_dim"],
            }
        if report.message_level is not None:
            ml = report.message_level
            entry["message_level"] = {
                "latency_s": ml["latency_s"],
                "range_latency_s": ml["range_latency_s"],
                "timeouts": ml["timeouts"],
                "retries": ml["retries"],
                "messages_dropped": ml["messages_dropped"],
                "drops": ml["drops"],
                "inflight_peak": ml["inflight_peak"],
                "links_used": ml["links"]["used"],
            }
        if name == "paper-sec51-churn":
            # Acceptance series: success rate and bandwidth over time.
            entry["success_rate_over_time"] = [
                [round(minute, 3), round(rate, 4)]
                for minute, rate in report.success_rate_series()
            ]
            entry["bandwidth_Bps_over_time"] = [
                [round(minute, 3), round(query_bps + maint_bps, 2)]
                for minute, query_bps, maint_bps in report.bandwidth_series()
            ]
        results[name] = entry
    return results


def merge_into_snapshot(section: dict, output: Path, key: str = "scenarios") -> Path:
    """Merge one backend's section into ``BENCH_core.json``, preserving
    every other section (order-independent with ``bench_perf_suite.py``)."""
    if output.exists():
        payload = json.loads(output.read_text())
    else:
        payload = {"schema": "bench-core/v1"}
    payload[key] = section
    output.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return output


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: N={QUICK_N} peers, 4x compressed timelines",
    )
    parser.add_argument(
        "--backend",
        choices=("dataplane", "message", "both"),
        default="dataplane",
        help="scenario execution backend(s) to run (default: dataplane)",
    )
    parser.add_argument(
        "--n", type=int, default=None,
        help=f"peer population (default: {FULL_N}; --quick default: {QUICK_N})",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="duration scale for every scenario (default: 1.0; --quick: 0.25)",
    )
    parser.add_argument("--seed", type=int, default=20050830)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"perf snapshot to update (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    n_peers = args.n if args.n is not None else (QUICK_N if args.quick else FULL_N)
    scale = args.scale if args.scale is not None else (0.25 if args.quick else 1.0)
    backends = ("dataplane", "message") if args.backend == "both" else (args.backend,)

    for backend in backends:
        section = {
            "generated_by": "benchmarks/bench_scenarios.py",
            "backend": backend,
            "quick": args.quick,
            "n_peers": n_peers,
            "duration_scale": scale,
            "seed": args.seed,
            "results": run_all(
                n_peers, seed=args.seed, duration_scale=scale, backend=backend
            ),
        }
        path = merge_into_snapshot(section, args.output, SECTION_KEYS[backend])

        print(f"updated {path} ({SECTION_KEYS[backend]} @ N={n_peers}, scale={scale})")
        for name, entry in section["results"].items():
            # success_rate/mean_hops are None when a run saw no (point) queries.
            success = entry["success_rate"]
            hops = entry["mean_hops"]
            line = (
                f"  {name:18s} wall {entry['wall_s']:7.2f}s  "
                f"queries {entry['queries']:6d}  "
                f"success {'n/a' if success is None else format(success, '.4f')}  "
                f"hops {'n/a' if hops is None else format(hops, '.2f')}  "
                f"load-cv {entry['load_cv']:.3f}"
            )
            ml = entry.get("message_level")
            if ml:
                p50 = ml["latency_s"].get("p50")
                line += (
                    f"  p50 {'n/a' if p50 is None else format(p50, '.3f')}s  "
                    f"timeouts {ml['timeouts']}"
                )
            if "writes" in entry:
                wsr = entry["write_success_rate"]
                line += (
                    f"  writes {entry['writes']:6d}  "
                    f"w-success {'n/a' if wsr is None else format(wsr, '.4f')}  "
                    f"div {entry['divergence_final']:.4f}"
                )
            srv = entry.get("serving")
            if srv:
                hit = entry["cache_hit_rate"]
                stale = entry["stale_read_rate"]
                p99_on = entry["serving_p99_s"]
                p99_off = srv["off"]["serving_p99_s"]
                line += (
                    f"  hit {'n/a' if hit is None else format(hit, '.3f')}  "
                    f"stale {'n/a' if stale is None else format(stale, '.3f')}  "
                    f"p99 {'n/a' if p99_on is None else format(p99_on, '.2f')}s"
                    f"/off {'n/a' if p99_off is None else format(p99_off, '.2f')}s  "
                    f"gini {entry['load_gini']:.3f}/off {srv['off']['load_gini']:.3f}"
                )
            md = entry.get("mdim")
            if md:
                recall = entry["box_recall"]
                rpb = entry["ranges_per_box"]
                line += (
                    f"  boxes {md['boxes']:5d}  "
                    f"recall {'n/a' if recall is None else format(recall, '.4f')}  "
                    f"rpb {'n/a' if rpb is None else format(rpb, '.2f')}"
                    f"/max {md['ranges_per_box_max']}"
                )
            rec = entry.get("recovery")
            if rec:
                warm_t = entry["recovery_time_s"]
                cold_t = rec["cold"]["time_to_converged_divergence_s"]
                line += (
                    f"  warm {'n/a' if warm_t is None else format(warm_t, '.1f')}s/"
                    f"{entry['recovery_maint_bytes']}B  "
                    f"cold {'n/a' if cold_t is None else format(cold_t, '.1f')}s/"
                    f"{rec['cold']['recovery_maint_bytes']}B  "
                    f"lost {entry['lost_acked_writes']}  "
                    f"resurrected {entry['tombstone_resurrections']}"
                )
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Sec. 6: range query cost -- in-network trie vs uniform-hash DHT + PHT.

Paper claim: layering an index over a uniform-hashing DHT "is
considerably less efficient ... multiple overlay network queries are
required to locate all the semantically close content."

Guards: Sec. 6's range-query efficiency claim vs uniform-hash DHT + PHT.
"""

from repro.experiments.rangecost import range_cost_sweep
from repro.experiments.reporting import print_table


def test_range_query_trie_vs_pht(benchmark):
    rows = benchmark.pedantic(range_cost_sweep, rounds=1, iterations=1)
    print_table(
        ["range width", "P-Grid msgs", "PHT hops", "PHT/P-Grid"],
        rows,
        title="Sec. 6 -- range query cost, data-oriented trie vs hash DHT + PHT",
    )
    # The trie must win at every width, and by a growing absolute margin
    # for wider ranges (per-trie-node DHT lookups accumulate).
    for _, pgrid, pht, ratio in rows:
        assert ratio > 1.5, f"PHT should be costlier (got ratio {ratio:.2f})"
    assert rows[-1][2] - rows[-1][1] > rows[0][2] - rows[0][1]

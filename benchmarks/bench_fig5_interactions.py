"""Figure 5: mean total interactions vs p for the five models.

Paper shape: AEP-family cost is flat at N ln 2 in the beta-regime and
rises as p -> 0; AUT is ~2x costlier at p = 1/2 but *cheaper* below the
crossover at p ~ 0.15.

Guards: Fig. 5 / Eqs. (1), (3) -- interaction counts across the five models.
"""

import math

from repro.experiments.fig45 import MODELS, P_GRID, run_sweep
from repro.experiments.reporting import print_table


def test_fig5_interactions(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        ["p", *MODELS],
        sweep.fig5_rows(),
        title=f"Figure 5 -- mean total interactions, N={sweep.n}",
    )
    idx_half = P_GRID.index(0.5)
    idx_low = P_GRID.index(0.05)
    n = sweep.n
    # Eager cost at p = 1/2 is N ln 2; AUT's is 2 N ln 2.
    assert abs(sweep.interactions["MVA"][idx_half] - n * math.log(2)) < 0.05 * n
    assert sweep.interactions["AUT"][idx_half] > 1.6 * sweep.interactions["AEP"][idx_half]
    # The crossover: AUT wins for strongly skewed splits (the paper states
    # it for the exact-knowledge family; sampling shifts the AEP curve,
    # see EXPERIMENTS.md).
    assert sweep.interactions["AUT"][idx_low] < sweep.interactions["MVA"][idx_low]
    # t* is p-independent across the beta-regime (Eq. 1).
    beta_regime = [
        sweep.interactions["MVA"][P_GRID.index(p)] for p in (0.35, 0.4, 0.45, 0.5)
    ]
    assert max(beta_regime) - min(beta_regime) < 0.02 * n

"""Figure 6(e): bilateral interactions per peer during construction.

Paper shape: grows gracefully (logarithmically) with the network size;
skewed distributions cost more because their tries are deeper and their
splits more lopsided (smaller alpha => more attempts, priced by Eq. 3).

Guards: Fig. 6(e) -- construction interactions grow ~log with network size.
"""

from repro.experiments.fig6 import panel_e
from repro.experiments.reporting import print_table

POPULATIONS = (256, 512, 1024)


def test_fig6e_interactions_per_peer(benchmark):
    rows = benchmark.pedantic(panel_e, args=(POPULATIONS,), rounds=1, iterations=1)
    print_table(
        ["distribution", *(f"n={n}" for n in POPULATIONS)],
        rows,
        title="Figure 6(e) -- interactions per peer for overlay construction",
    )
    by_label = {row[0]: row[1:] for row in rows}
    for label, costs in by_label.items():
        # Graceful growth: far sublinear in n (n quadruples, cost must not).
        assert costs[-1] < 3.0 * costs[0] + 5.0
    # Skewed data costs more than uniform.
    assert max(by_label["P1.5"]) > min(by_label["U"])

"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures;
the pytest-benchmark fixture times the regeneration and the printed
tables carry the actual series (run with ``-s`` to see them inline).
"""

import pytest

collect_ignore_glob: list = []


def pytest_configure(config):
    # Benchmarks print paper-style tables; keep them visible in CI logs.
    config.option.verbose = max(config.option.verbose, 0)

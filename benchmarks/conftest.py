"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures
(its module docstring carries a ``Guards:`` line naming the figure or
claim it protects); the pytest-benchmark fixture times the regeneration
and the printed tables carry the actual series (run with ``-s`` to see
them inline).

Two perf-tracking entry points sit alongside the figure suites:
``bench_micro_core.py`` (statistical micro-benchmarks of the hot
primitives, via pytest-benchmark) and ``bench_perf_suite.py`` (one-shot
absolute timings across overlay sizes, emitting ``BENCH_core.json`` at
the repo root -- run ``python benchmarks/bench_perf_suite.py --quick``
for the CI smoke variant).
"""

import pytest

collect_ignore_glob: list = []


def pytest_configure(config):
    # Benchmarks print paper-style tables; keep them visible in CI logs.
    config.option.verbose = max(config.option.verbose, 0)

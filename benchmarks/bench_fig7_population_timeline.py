"""Figure 7: number of participating peers over the experiment timeline.

Paper shape: ramp-up during the join phase, a stable plateau (~296
peers) through construction and queries, and a visible dip once churn
begins.

Guards: Fig. 7 -- the join/plateau/churn population timeline.
"""

from repro.experiments import fig789
from repro.experiments.reporting import print_table


def test_fig7_population_timeline(benchmark):
    report = benchmark.pedantic(fig789.system_report, rounds=1, iterations=1)
    print_table(
        ["minute", "peers online"],
        fig789.fig7_rows(),
        title="Figure 7 -- participating peers over time",
    )
    pop = dict(report.population)
    config = report.config
    plateau_t = (config.construct_start + config.query_start) / 2
    plateau = max(c for m, c in pop.items() if abs(m - plateau_t) < 30)
    early = min(c for m, c in pop.items() if m <= config.join_end / 4)
    churn_min = min(
        c for m, c in pop.items() if m > config.churn_start + 2
    )
    assert plateau == config.peers, "every peer joins by the plateau"
    assert early < plateau, "ramp-up visible"
    assert churn_min < plateau, "churn dip visible"

"""Figure 6(c): load-balance deviation vs storage bound d_max.

Paper shape: "no such influence exists" -- the deviation does not improve
with larger per-partition samples, which is what allows the protocol to
run with very small samples.

Guards: Fig. 6(c) -- insensitivity of load balance to sample size.
"""

from repro._util import mean
from repro.experiments.fig6 import panel_c
from repro.experiments.reporting import print_table

FACTORS = (10.0, 20.0, 30.0)


def test_fig6c_deviation_vs_d_max(benchmark):
    rows = benchmark.pedantic(
        panel_c, kwargs={"n": 256, "factors": FACTORS}, rounds=1, iterations=1
    )
    print_table(
        ["distribution", *(f"d_max={int(f)}*n_min" for f in FACTORS)],
        rows,
        title="Figure 6(c) -- deviation for various data sample sizes (n=256)",
    )
    # No systematic improvement with the sample size: the column means
    # must stay within a narrow band of each other.
    col_means = [mean(row[1 + i] for row in rows) for i in range(len(FACTORS))]
    assert max(col_means) - min(col_means) < 0.35

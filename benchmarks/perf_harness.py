"""Perf-tracking harness for the overlay data plane.

Guards the constant factors behind the paper's asymptotic claims: O(log K)
lookups, O(log K + K_range) shower range queries, and the parallel
construction cost of Sec. 4.  Every future PR regenerates
``BENCH_core.json`` (repo root) via ``bench_perf_suite.py`` so the
repository carries a perf trajectory, not just a correctness history.

Methodology
-----------
* **Queries** run against :meth:`PGridNetwork.ideal` overlays (8 keys per
  peer, ``d_max=40``, ``n_min=3``) so query timings isolate the data
  plane from construction noise.  Lookups draw from a fixed 256-key
  sample; range queries cover the fixed window ``[0.4, 0.6)``.
* **Construction** times :func:`build_overlay` end to end (including the
  anti-entropy convergence sweeps) over uniform workloads of 10 keys per
  peer -- plus a 25-keys-per-peer point at N=4096 (~100k keys), the
  scale target of the ROADMAP north star.
* All workloads are seeded; numbers vary only with hardware and code.

``SEED_BASELINE`` pins the timings of the seed implementation (commit
``6709a99``), measured with this exact methodology on the CI container
that introduced the harness; ``speedup_vs_seed`` in the emitted JSON is
computed against it.  Absolute numbers shift with hardware -- the ratios
and the trend across PRs are the signal.
"""

from __future__ import annotations

import json
import math
import platform
import random
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.pgrid.keyspace import float_to_key  # noqa: E402
from repro.pgrid.network import PGridNetwork, build_overlay  # noqa: E402

__all__ = [
    "SEED_BASELINE",
    "bench_queries",
    "bench_construction",
    "run_suite",
    "emit",
    "DEFAULT_OUTPUT",
]

#: Default location of the emitted perf snapshot.
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: Seed-implementation timings (commit 6709a99) under this methodology.
#: ``build_s`` has no 4096 entry: the seed needed ~minutes there, which
#: is exactly why the data-plane overhaul happened.
SEED_BASELINE: Dict[str, Dict[str, float]] = {
    "lookup_us": {"256": 17.10, "1024": 34.78},
    "range_us": {"256": 374.61, "1024": 1605.24},
    "build_s": {"256": 1.895, "1024": 8.039},
}


def bench_queries(
    n_peers: int, *, lookups: int = 2000, ranges: int = 200, repeats: int = 3
) -> Dict[str, float]:
    """Time exact-match and range queries on an ideal overlay of ``n_peers``.

    Returns per-operation microseconds plus mean hop/message counts (the
    sanity anchor that speedups did not come from doing less routing).
    Each timing is the best of ``repeats`` passes -- the standard defense
    against scheduler noise on shared/single-core CI machines (the
    minimum is the run least polluted by interference).
    """
    rand = random.Random(5)
    keys = [float_to_key(rand.random()) for _ in range(8 * n_peers)]
    net = PGridNetwork.ideal(keys, n_peers, d_max=40, n_min=3, rng=1)
    query_keys = rand.sample(keys, 256)

    lookup_us = math.inf
    hops = 0
    for _ in range(repeats):
        qrand = random.Random(99)
        hops = 0
        t0 = time.perf_counter()
        for i in range(lookups):
            hops += net.lookup(query_keys[i % 256], rng=qrand).hops
        lookup_us = min(lookup_us, (time.perf_counter() - t0) / lookups * 1e6)

    lo, hi = float_to_key(0.4), float_to_key(0.6)
    range_us = math.inf
    messages = 0
    found = 0
    for _ in range(repeats):
        qrand = random.Random(77)
        messages = 0
        t0 = time.perf_counter()
        for _ in range(ranges):
            res = net.range_query(lo, hi, rng=qrand)
            messages += res.messages
            found = len(res.keys)
        range_us = min(range_us, (time.perf_counter() - t0) / ranges * 1e6)

    return {
        "lookup_us": round(lookup_us, 3),
        "range_us": round(range_us, 3),
        "mean_lookup_hops": round(hops / lookups, 3),
        "mean_range_messages": round(messages / ranges, 3),
        "range_keys_found": found,
    }


def bench_construction(
    n_peers: int, *, keys_per_peer: int = 10, repeats: int = 2
) -> Dict[str, float]:
    """Time end-to-end :func:`build_overlay` runs at ``n_peers`` (best of
    ``repeats``, same seeds, to shed scheduler noise)."""
    rand = random.Random(7)
    peer_keys = [
        [float_to_key(rand.random()) for _ in range(keys_per_peer)]
        for _ in range(n_peers)
    ]
    elapsed = math.inf
    net = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        net = build_overlay(peer_keys, rng=11)
        elapsed = min(elapsed, time.perf_counter() - t0)
    return {
        "build_s": round(elapsed, 4),
        "keys_per_peer": keys_per_peer,
        "partitions": len(net.partitions()),
        "consistent": net.is_consistent(),
    }


def run_suite(
    sizes: Iterable[int] = (256, 1024, 4096), *, quick: bool = False
) -> dict:
    """Run the full suite and assemble the ``BENCH_core.json`` payload."""
    sizes = tuple(sizes)
    lookups = 500 if quick else 2000
    ranges = 50 if quick else 200
    # Quick mode trims *iterations*, never *repeats*: best-of-N is the
    # noise/warm-up shield, and the CI regression gate compares quick
    # numbers against the committed full-mode snapshot -- fewer repeats
    # would read as a systematic slowdown (cold caches dominate the
    # first pass, ~3x on the smallest build).
    repeats = 3
    build_repeats = 2
    results: dict = {
        "lookup_us": {},
        "range_us": {},
        "mean_lookup_hops": {},
        "mean_range_messages": {},
        "build_s": {},
        "build_partitions": {},
    }
    for n in sizes:
        q = bench_queries(n, lookups=lookups, ranges=ranges, repeats=repeats)
        results["lookup_us"][str(n)] = q["lookup_us"]
        results["range_us"][str(n)] = q["range_us"]
        results["mean_lookup_hops"][str(n)] = q["mean_lookup_hops"]
        results["mean_range_messages"][str(n)] = q["mean_range_messages"]
    for n in sizes:
        # The ROADMAP scale point: ~100k keys at the largest population.
        kpp = 25 if n >= 4096 else 10
        c = bench_construction(n, keys_per_peer=kpp, repeats=build_repeats)
        if not c["consistent"]:  # pragma: no cover - hard failure
            raise RuntimeError(f"construction at N={n} produced an inconsistent overlay")
        results["build_s"][str(n)] = c["build_s"]
        results["build_partitions"][str(n)] = c["partitions"]

    speedups: dict = {}
    for metric in ("lookup_us", "range_us", "build_s"):
        base = SEED_BASELINE.get(metric, {})
        for n, value in results[metric].items():
            if n in base and value > 0:
                speedups.setdefault(metric, {})[n] = round(base[n] / value, 2)

    return {
        "schema": "bench-core/v1",
        "generated_by": "benchmarks/bench_perf_suite.py",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": quick,
        "sizes": list(sizes),
        "results": results,
        "seed_baseline": SEED_BASELINE,
        "speedup_vs_seed": speedups,
        "speedup_note": (
            "seed_baseline was measured on the environment that introduced "
            "the harness; speedup_vs_seed is only meaningful on comparable "
            "hardware (e.g. the CI runner class). Across machines, compare "
            "trends of absolute numbers from the same environment instead."
        ),
    }


def emit(payload: dict, output: Optional[Path] = None) -> Path:
    """Write the payload as pretty JSON; returns the path written.

    Sections the suite does not produce itself (e.g. the ``scenarios``
    / ``scenarios_message`` sections of ``bench_scenarios.py``) are
    carried over from an existing snapshot, so the perf suite and the
    scenario suite can regenerate their halves in either order.
    """
    path = Path(output) if output is not None else DEFAULT_OUTPUT
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError as exc:
            print(
                f"perf_harness: existing {path} is not valid JSON ({exc}); "
                "its sections (e.g. scenarios) cannot be carried over",
                file=sys.stderr,
            )
            existing = {}
        for key, value in existing.items():
            payload.setdefault(key, value)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path

"""Figure 6(a): load-balance deviation vs population size.

Paper shape: deviation stays practically stable across n = 256/512/1024
and sits roughly in the 0.1-0.5 band, with skewed distributions higher
than uniform.

Guards: Fig. 6(a) -- deviation stability across population sizes.
"""

from repro.experiments.fig6 import DISTRIBUTION_LABELS, panel_a
from repro.experiments.reporting import print_table

POPULATIONS = (256, 512, 1024)


def test_fig6a_deviation_vs_population(benchmark):
    rows = benchmark.pedantic(panel_a, args=(POPULATIONS,), rounds=1, iterations=1)
    print_table(
        ["distribution", *(f"n={n}" for n in POPULATIONS)],
        rows,
        title="Figure 6(a) -- deviation for various peer populations "
        "(n_min=5, d_max=10*n_min)",
    )
    by_label = {row[0]: row[1:] for row in rows}
    # Stability across population sizes (the paper's main observation).
    for label in DISTRIBUTION_LABELS:
        devs = by_label[label]
        assert max(devs) < 1.2
        assert max(devs) - min(devs) < 0.6
    # Uniform data balances at least as well as the most skewed Pareto.
    assert min(by_label["U"]) <= max(by_label["P1.5"]) + 0.2

#!/usr/bin/env python
"""Regenerate ``BENCH_core.json`` -- the repo's perf trajectory snapshot.

Guards the data-plane constant factors behind the paper's complexity
claims (Secs. 2.1, 2.3, 4.3): per-operation lookup/range latency on
ideal overlays and end-to-end decentralized construction time, at
N ∈ {256, 1024, 4096} peers.  Run it after any change near the hot
paths; CI runs ``--quick`` on every PR so regressions surface as a diff
of the committed numbers, not as an anecdote.

Usage::

    python benchmarks/bench_perf_suite.py            # full suite
    python benchmarks/bench_perf_suite.py --quick    # CI smoke (N<=1024)
    python benchmarks/bench_perf_suite.py --sizes 256 512
    python benchmarks/bench_perf_suite.py --output /tmp/bench.json
    python benchmarks/bench_perf_suite.py --scale  # + sharded scale matrix

See ``benchmarks/perf_harness.py`` for the methodology and the pinned
seed baseline the emitted ``speedup_vs_seed`` section compares against.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from perf_harness import DEFAULT_OUTPUT, emit, run_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: N in {256, 1024} and fewer query repetitions",
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        help="peer-population sizes to benchmark (default: 256 1024 4096; "
        "--quick default: 256 1024)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="also run the sharded-kernel scale bench (bench_scale.py): the "
        "N x shard-count throughput matrix, determinism audit and "
        "heap-health bounds, merged into the same snapshot's 'scale' "
        "section",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        help=f"where to write the JSON snapshot (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    sizes = args.sizes
    if sizes is None:
        sizes = (256, 1024) if args.quick else (256, 1024, 4096)

    payload = run_suite(sizes, quick=args.quick)
    path = emit(payload, args.output)

    results = payload["results"]
    print(f"wrote {path}")
    for n in payload["sizes"]:
        n = str(n)
        speed = payload["speedup_vs_seed"]
        notes = []
        for metric, unit in (("lookup_us", "us"), ("range_us", "us"), ("build_s", "s")):
            value = results[metric].get(n)
            if value is None:
                continue
            ratio = speed.get(metric, {}).get(n)
            suffix = f" ({ratio}x vs seed)" if ratio else ""
            notes.append(f"{metric.split('_')[0]} {value}{unit}{suffix}")
        print(f"  N={n}: " + ", ".join(notes))

    if args.scale:
        from bench_scale import main as scale_main

        scale_args = ["--output", str(args.output)]
        if args.quick:
            scale_args.append("--smoke")
        return scale_main(scale_args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Sharded-kernel scale bench: the ``scale`` section of ``BENCH_core.json``.

Measures what the sharded simulation kernel buys and proves what it must
never cost, in one run:

* **Throughput matrix** -- events/sec and wall-clock for the
  uniform-baseline scenario at N in {4096, 16384, 65536} crossed with
  shard counts {1, 4, 8}.  ``shards=1`` runs the classic single-process
  :class:`~repro.simnet.engine.Simulator`; ``shards>1`` runs worker
  mode (:func:`~repro.scenarios.message_runner.run_sharded_scenario`):
  the keyspace sliced into independent per-process populations, merged
  into one report.  This is the path that makes N=65,536 reachable in
  one bench run.
* **Determinism audit** -- the same spec executed on the in-process
  barrier kernel (:class:`~repro.simnet.shard.ShardedSimulator`) at
  ``shards=8`` must produce a report digest byte-identical to the
  ``shards=1`` single-heap run.  The digests and the kernel's
  cross-shard counters (barriers crossed, events staged, cross-shard
  wire traffic) are recorded; a mismatch fails the bench.
* **Heap-health audit** -- every cell records the simulator's
  pending-event peak, lazy-cancel backlog and compaction count (the
  observable heap-compaction stats on
  :class:`~repro.simnet.engine.Simulator`), and the bench fails if any
  kernel's pending peak exceeds a generous per-peer bound -- the guard
  against an unbounded-heap regression hiding inside a wall-clock win.

Modes::

    python benchmarks/bench_scale.py             # full matrix, incl. N=65,536
    python benchmarks/bench_scale.py --nightly   # N=16,384 x shards {1,4,8}
    python benchmarks/bench_scale.py --smoke     # CI: N=8192, shards=4, budgeted

``--smoke`` is the CI ``scale-smoke`` job's workload: one sharded cell
plus the determinism audit at a small population, with a hard
wall-clock budget (``--budget-s``, default 480) enforced in-script on
top of the job's ``timeout-minutes``.

The section is merged into the snapshot alongside the perf and
scenario sections (same idiom as ``bench_scenarios.py``), and
``check_regression.py`` gates it: intra-snapshot digest equality and
pending bounds, plus events/sec and wall-clock ratios against the
committed numbers when the populations are comparable.
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_scenarios import merge_into_snapshot  # noqa: E402
from profile_kernel import format_profile  # noqa: E402

from repro.scenarios import (  # noqa: E402
    MessageNetConfig,
    MessageScenarioRunner,
    run_sharded_scenario,
    scenario,
)

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

#: The matrix scenario and its knobs.  duration_scale 0.05 keeps the
#: simulated window short enough that the N=65,536 cell completes in one
#: bench run while still exercising churn, queries and maintenance.
SCENARIO = "uniform-baseline"
SEED = 20050830
DURATION_SCALE = 0.05

#: (n_peers, shards) cells per profile.  shards=1 -> single process;
#: shards>1 -> worker mode.  The full profile records at least one
#: N=65,536 run (worker mode only: the point of sharding is that the
#: single-process path need not carry that population).
FULL_CELLS = (
    (4096, 1), (4096, 4), (4096, 8),
    (16384, 1), (16384, 4), (16384, 8),
    (65536, 8),
)
NIGHTLY_CELLS = ((16384, 1), (16384, 4), (16384, 8))
SMOKE_CELLS = ((8192, 4),)

#: Population for the in-process barrier-kernel determinism audit
#: (small: the audit runs the same spec twice in one process).
DETERMINISM_N = 1024
SMOKE_DETERMINISM_N = 256
DETERMINISM_SHARDS = 8

#: Pending-heap bound: no kernel may ever hold more than this many
#: live-or-cancelled events per resident peer (plus slack for control
#: timers).  Measured peaks sit well under 0.1/peer, so 4/peer is an
#: order of magnitude of headroom while still catching a leak that
#: re-schedules without cancelling or a compactor that stops firing.
PENDING_PER_PEER = 4
PENDING_SLACK = 1024


def _digest(report) -> str:
    return hashlib.sha256(report.to_json().encode()).hexdigest()


def run_determinism(n_peers: int, *, seed: int, duration_scale: float) -> dict:
    """Barrier-kernel audit: shards=8 digest must equal shards=1."""
    spec = scenario(
        SCENARIO, n_peers=n_peers, seed=seed, duration_scale=duration_scale
    )
    single = MessageScenarioRunner(spec)
    digest_1 = _digest(single.run())
    sharded = MessageScenarioRunner(
        spec, net_config=MessageNetConfig(shards=DETERMINISM_SHARDS)
    )
    digest_8 = _digest(sharded.run())
    sim = sharded.simulator
    return {
        "n_peers": n_peers,
        "shards": DETERMINISM_SHARDS,
        "digest_shards1": digest_1,
        "digest_shards8": digest_8,
        "match": digest_1 == digest_8,
        "barriers": sim.barriers,
        "cross_shard_staged": sim.cross_shard_staged,
        "cross_shard_messages": sharded.transport.cross_shard_messages,
        "cross_shard_bytes": sharded.transport.cross_shard_bytes,
    }


def run_cell_best(
    n_peers: int,
    shards: int,
    *,
    seed: int,
    duration_scale: float,
    repeats: int = 1,
) -> dict:
    """Best-of-``repeats`` runs of one cell (min wall clock kept).

    The workload is deterministic -- every repeat processes the same
    events and produces the same report -- so repeats differ only in
    wall clock, and the minimum is the least-noise measurement.  The
    smoke profile defaults to best-of-2 so a single host-level timing
    spike cannot trip the CI events/sec ratio gate.
    """
    best = None
    for _ in range(max(1, repeats)):
        entry = run_cell(
            n_peers, shards, seed=seed, duration_scale=duration_scale
        )
        if best is None or entry["wall_s"] < best["wall_s"]:
            best = entry
    best["repeats"] = max(1, repeats)
    return best


def run_cell(n_peers: int, shards: int, *, seed: int, duration_scale: float) -> dict:
    """One throughput cell: run, time, and audit heap health."""
    spec = scenario(
        SCENARIO, n_peers=n_peers, seed=seed, duration_scale=duration_scale
    )
    start = time.perf_counter()
    if shards == 1:
        runner = MessageScenarioRunner(spec)
        report = runner.run()
        wall_s = time.perf_counter() - start
        sim = runner.simulator
        kernels = [{
            "events_processed": sim.events_processed,
            "pending_peak": sim.pending_peak,
            "pending_cancelled": sim.pending_cancelled,
            "compactions": sim.compactions,
            "wall_s": wall_s,
        }]
        mode = "single"
    else:
        kernels = []
        report = run_sharded_scenario(spec, shards=shards, kernel_stats=kernels)
        wall_s = time.perf_counter() - start
        mode = "workers"
    events = sum(k["events_processed"] for k in kernels)
    pending_peak = max(k["pending_peak"] for k in kernels)
    # The bound applies per kernel: each worker hosts ~n/shards peers.
    resident = -(-n_peers // shards)
    pending_bound = PENDING_PER_PEER * resident + PENDING_SLACK
    return {
        "n_peers": n_peers,
        "shards": shards,
        "mode": mode,
        "wall_s": round(wall_s, 3),
        "worker_wall_s": round(max(k["wall_s"] for k in kernels), 3),
        "events": events,
        "events_per_s": round(events / wall_s, 1) if wall_s > 0 else None,
        "queries": report.totals["queries"],
        "success_rate": report.totals["success_rate"],
        "n_peers_end": report.n_peers_end,
        "pending_peak": pending_peak,
        "pending_bound": pending_bound,
        "pending_bound_ok": pending_peak <= pending_bound,
        "pending_cancelled": sum(k["pending_cancelled"] for k in kernels),
        "compactions": sum(k["compactions"] for k in kernels),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    profile_group = parser.add_mutually_exclusive_group()
    profile_group.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: one sharded cell at N={SMOKE_CELLS[0][0]}, "
             f"shards={SMOKE_CELLS[0][1]}, hard wall-clock budget",
    )
    profile_group.add_argument(
        "--nightly", action="store_true",
        help="nightly mode: the N=16,384 row of the matrix (shards 1/4/8)",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="fail if the bench's total wall time exceeds this many "
             "seconds (default: 480 in --smoke mode, unlimited otherwise)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--scale", type=float, default=DURATION_SCALE,
        help=f"duration scale for every cell (default: {DURATION_SCALE})",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="run each cell this many times and keep the fastest wall "
             "clock (default: 2 in --smoke mode, 1 otherwise); the "
             "workload is deterministic, so repeats only de-noise the "
             "timing",
    )
    parser.add_argument(
        "--profile", type=Path, nargs="?", metavar="PATH",
        const=REPO_ROOT / "bench_scale_profile.txt", default=None,
        help="run the throughput cells under cProfile and write the "
             "top-40 cumulative table to PATH (default: "
             "bench_scale_profile.txt); profiler overhead inflates the "
             "recorded walls, so don't commit a snapshot from a "
             "profiled run",
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"perf snapshot to update (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        profile, cells, det_n = "smoke", SMOKE_CELLS, SMOKE_DETERMINISM_N
    elif args.nightly:
        profile, cells, det_n = "nightly", NIGHTLY_CELLS, DETERMINISM_N
    else:
        profile, cells, det_n = "full", FULL_CELLS, DETERMINISM_N
    budget_s = args.budget_s
    if budget_s is None and args.smoke:
        budget_s = 480.0
    repeats = args.repeats
    if repeats is None:
        repeats = 2 if args.smoke else 1

    failures = []
    bench_start = time.perf_counter()

    determinism = run_determinism(
        det_n, seed=args.seed, duration_scale=args.scale
    )
    verdict = "ok" if determinism["match"] else "MISMATCH"
    print(
        f"determinism @ N={det_n} shards={DETERMINISM_SHARDS}: {verdict}  "
        f"barriers {determinism['barriers']}  "
        f"staged {determinism['cross_shard_staged']}  "
        f"cross-shard msgs {determinism['cross_shard_messages']}"
    )
    if not determinism["match"]:
        failures.append(
            f"shards={DETERMINISM_SHARDS} report digest differs from "
            f"shards=1 at N={det_n}: "
            f"{determinism['digest_shards8'][:12]}... vs "
            f"{determinism['digest_shards1'][:12]}..."
        )

    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    results = []
    for n_peers, shards in cells:
        entry = run_cell_best(
            n_peers, shards, seed=args.seed, duration_scale=args.scale,
            repeats=repeats,
        )
        results.append(entry)
        success = entry["success_rate"]
        print(
            f"  N={n_peers:6d} shards={shards}  [{entry['mode']:7s}]  "
            f"wall {entry['wall_s']:8.2f}s  "
            f"events {entry['events']:9d}  "
            f"ev/s {entry['events_per_s']:10.1f}  "
            f"queries {entry['queries']:6d}  "
            f"success {'n/a' if success is None else format(success, '.4f')}  "
            f"pend-peak {entry['pending_peak']}"
        )
        if not entry["pending_bound_ok"]:
            failures.append(
                f"N={n_peers} shards={shards}: pending peak "
                f"{entry['pending_peak']} exceeds bound "
                f"{entry['pending_bound']} "
                f"({PENDING_PER_PEER}/peer + {PENDING_SLACK})"
            )

    if profiler is not None:
        profiler.disable()
        table = format_profile(profiler, top=40, sort="cumulative")
        args.profile.write_text(table)
        print(f"wrote cProfile table to {args.profile}")

    total_wall = time.perf_counter() - bench_start
    if budget_s is not None and total_wall > budget_s:
        failures.append(
            f"bench wall time {total_wall:.1f}s exceeds the "
            f"{budget_s:g}s budget"
        )

    section = {
        "generated_by": "benchmarks/bench_scale.py",
        "schema": "scale/v1",
        "profile": profile,
        "scenario": SCENARIO,
        "seed": args.seed,
        "duration_scale": args.scale,
        "total_wall_s": round(total_wall, 3),
        "determinism": determinism,
        "cells": results,
    }
    path = merge_into_snapshot(section, args.output, "scale")
    print(f"updated {path} (scale @ {profile}, total wall {total_wall:.1f}s)")

    if failures:
        print("\nscale bench failures:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""cProfile the wire-kernel hot path over a budgeted scenario run.

Runs the scale bench's canonical workload (``uniform-baseline``, same
seed and duration scale as ``bench_scale.py``) on the single-process
message backend under :mod:`cProfile` and prints the top-N functions as
a table -- the first stop when chasing an events/sec regression, and
the nightly workflow uploads its output as an artifact so the hot-path
shape is on record next to every full-scale snapshot.

Usage::

    python benchmarks/profile_kernel.py                  # N=4096, top 30
    python benchmarks/profile_kernel.py --sort tottime   # self-time view
    python benchmarks/profile_kernel.py --output prof.txt --budget-s 300

The profiled interval covers scenario construction *and* the event
loop -- the same window ``bench_scale.py`` times -- so the table's
shares line up with the recorded wall-clock cells.  ``--budget-s``
bounds the (profiler-inflated) run so a pathological kernel fails fast
instead of eating the CI job's timeout.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = str(REPO_ROOT / "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.scenarios import MessageScenarioRunner, scenario  # noqa: E402

#: Mirror bench_scale.py's canonical knobs so profile shares line up
#: with the recorded scale cells.
SCENARIO = "uniform-baseline"
SEED = 20050830
DURATION_SCALE = 0.05


def format_profile(profiler: cProfile.Profile, *, top: int, sort: str) -> str:
    """The profiler's top-``top`` functions as a plain-text table."""
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return buf.getvalue()


def profile_run(
    n_peers: int, *, seed: int, duration_scale: float
) -> tuple[cProfile.Profile, float, int]:
    """Run one profiled cell; returns (profiler, wall_s, events)."""
    spec = scenario(
        SCENARIO, n_peers=n_peers, seed=seed, duration_scale=duration_scale
    )
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    runner = MessageScenarioRunner(spec)
    runner.run()
    profiler.disable()
    wall_s = time.perf_counter() - start
    return profiler, wall_s, runner.simulator.events_processed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n-peers", type=int, default=4096,
        help="population for the profiled run (default: 4096)",
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--scale", type=float, default=DURATION_SCALE,
        help=f"duration scale (default: {DURATION_SCALE})",
    )
    parser.add_argument(
        "--top", type=int, default=30,
        help="number of functions to print (default: 30)",
    )
    parser.add_argument(
        "--sort", choices=("cumulative", "tottime", "ncalls"),
        default="cumulative",
        help="pstats sort order (default: cumulative)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the table to this file instead of stdout",
    )
    parser.add_argument(
        "--budget-s", type=float, default=None,
        help="fail if the profiled run exceeds this many wall seconds",
    )
    args = parser.parse_args(argv)

    profiler, wall_s, events = profile_run(
        args.n_peers, seed=args.seed, duration_scale=args.scale
    )
    header = (
        f"kernel profile: {SCENARIO} N={args.n_peers} seed={args.seed} "
        f"scale={args.scale:g}\n"
        f"wall {wall_s:.2f}s (profiler overhead included), "
        f"{events} events, top {args.top} by {args.sort}\n\n"
    )
    table = header + format_profile(profiler, top=args.top, sort=args.sort)

    if args.output is not None:
        args.output.write_text(table)
        print(f"wrote profile to {args.output} (wall {wall_s:.2f}s)")
    else:
        print(table, end="")

    if args.budget_s is not None and wall_s > args.budget_s:
        print(
            f"profile_kernel: run took {wall_s:.1f}s, over the "
            f"{args.budget_s:g}s budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 6(f): total data keys moved per peer (bandwidth consumption).

Paper shape: grows gracefully with network size; data skew increases
bandwidth significantly (deeper tries move keys more often).

Guards: Fig. 6(f) -- per-peer bandwidth (keys moved) during construction.
"""

from repro.experiments.fig6 import panel_f
from repro.experiments.reporting import print_table

POPULATIONS = (256, 512, 1024)


def test_fig6f_keys_moved_per_peer(benchmark):
    rows = benchmark.pedantic(panel_f, args=(POPULATIONS,), rounds=1, iterations=1)
    print_table(
        ["distribution", *(f"n={n}" for n in POPULATIONS)],
        rows,
        title="Figure 6(f) -- total data keys moved per peer "
        "(construction bandwidth)",
    )
    by_label = {row[0]: row[1:] for row in rows}
    for label, costs in by_label.items():
        assert costs[0] > 50, "construction must move real volume"
        assert costs[-1] < 6.0 * costs[0], "growth must stay graceful"
    # Skew costs bandwidth (paper: "skew ... can significantly increase
    # the bandwidth consumption").
    assert max(by_label["P1.0"]) > 0.8 * min(by_label["U"])

"""Figure 9: query latency (average and standard deviation) over time.

Paper shape: roughly constant during the static query phase, slightly
higher average with a larger deviation during churn (offline peers force
retries).  Absolute values differ from PlanetLab's heavily loaded nodes;
shapes are what we compare.

Guards: Fig. 9 -- query latency shape through static and churn phases.
"""

from repro._util import mean
from repro.experiments import fig789
from repro.experiments.reporting import print_table


def test_fig9_query_latency(benchmark):
    report = benchmark.pedantic(fig789.system_report, rounds=1, iterations=1)
    print_table(
        ["minute", "avg latency s", "stddev s"],
        fig789.fig9_rows(),
        title="Figure 9 -- query latency",
    )
    config = report.config
    static = [
        (avg, sd)
        for m, avg, sd in report.latency
        if config.query_start < m <= config.churn_start
    ]
    churn = [
        (avg, sd) for m, avg, sd in report.latency if m > config.churn_start + 3
    ]
    assert static and churn, "both phases must produce latency samples"
    static_avg = mean(a for a, _ in static)
    churn_avg = mean(a for a, _ in churn)
    assert churn_avg >= 0.8 * static_avg, (
        "churn must not make queries faster"
    )
    # The retry tail under churn inflates the spread.
    static_sd = mean(s for _, s in static)
    churn_sd = mean(s for _, s in churn)
    assert churn_sd >= 0.8 * static_sd

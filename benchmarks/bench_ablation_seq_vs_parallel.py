"""Sec. 4.3: construction latency -- sequential joins vs parallel rounds.

Paper claim: the parallel construction needs O(log^2 N) latency versus
the standard maintenance model's O(N log N); total traffic stays in the
same class.

Guards: Sec. 4.3's O(log^2 N) parallel vs O(N log N) sequential latency claim.
"""

from repro.experiments.complexity import latency_sweep
from repro.experiments.reporting import print_table


def test_sequential_vs_parallel_latency(benchmark):
    rows = benchmark.pedantic(latency_sweep, rounds=1, iterations=1)
    print_table(
        ["n", "seq msgs", "seq latency", "par rounds", "speedup", "log2(n)^2"],
        rows,
        title="Sec. 4.3 -- sequential vs parallel construction",
    )
    # The speedup must grow with n: O(N log N) vs O(log^2 N).
    speedups = [row[4] for row in rows]
    assert speedups[-1] > speedups[0]
    assert speedups[-1] > 10.0
    # Parallel rounds stay within a small factor of log^2 n.
    for n, _, _, rounds, _, log2sq in rows:
        assert rounds < 6.0 * log2sq

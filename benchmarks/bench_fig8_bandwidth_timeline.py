"""Figure 8: aggregate bandwidth, maintenance vs query traffic.

Paper shape: maintenance traffic peaks during the construction phase
(~250 Bps/peer on PlanetLab) and decays quickly afterwards; query
traffic dominates during the query phase.

Guards: Fig. 8 -- maintenance-vs-query bandwidth over the timeline.
"""

from repro.experiments import fig789
from repro.experiments.reporting import print_table
from repro.simnet import protocol as P


def test_fig8_bandwidth_timeline(benchmark):
    report = benchmark.pedantic(fig789.system_report, rounds=1, iterations=1)
    print_table(
        ["minute", "maintenance Bps", "query Bps"],
        fig789.fig8_rows(),
        title="Figure 8 -- aggregate bandwidth consumption",
    )
    config = report.config
    maint = dict(report.maintenance_bandwidth)
    construction = [
        bps
        for m, bps in maint.items()
        if config.construct_start < m <= config.query_start
    ]
    late = [
        bps for m, bps in maint.items() if m > config.query_start + 10
    ]
    assert max(construction) > 4 * (max(late) if late else 1.0), (
        "construction phase must dominate maintenance traffic"
    )
    query = dict(report.query_bandwidth)
    in_query_phase = sum(
        bps for m, bps in query.items() if m > config.query_start
    )
    before = sum(bps for m, bps in query.items() if m <= config.query_start)
    assert in_query_phase > before
